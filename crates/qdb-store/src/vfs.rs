//! The filesystem seam.
//!
//! Every filesystem operation the store performs goes through [`Vfs`], so
//! the crash-point sweep harness can substitute [`CrashVfs`] and kill the
//! process-model at the N-th operation. [`StdVfs`] is the production
//! implementation; it adds nothing on top of `std::fs` beyond the fsync
//! entry points the atomic-write protocol needs.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Filesystem operations the store needs, as one mockable surface.
///
/// Implementations must be usable from the supervisor's panic-isolated
/// job closures, hence `Sync`.
pub trait Vfs: Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) `path` and writes all of `bytes`.
    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it if absent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes a file's data and metadata to stable storage.
    fn fsync_file(&self, path: &Path) -> io::Result<()>;
    /// Flushes a directory, making renames within it durable.
    fn fsync_dir(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames a file or directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Creates `path` exclusively (`O_EXCL`) and writes all of `bytes`,
    /// then fsyncs the file. Returns `false` — writing nothing — if the
    /// path already exists. This is the one primitive whose win/lose
    /// outcome the *filesystem* arbitrates, which is what cross-process
    /// mutual exclusion (lease claims) needs; everything else here is
    /// last-writer-wins.
    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool>;
    /// Recursively creates a directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncates (or extends) a file to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Whether a path exists (any kind).
    fn exists(&self, path: &Path) -> bool;
    /// Whether a path is a directory.
    fn is_dir(&self, path: &Path) -> bool;
    /// Lists the entries of a directory, sorted for determinism.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// Production [`Vfs`]: plain `std::fs` plus real fsyncs.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fds are an fsync target on unix; elsewhere the rename
        // durability guarantee has to come from the platform.
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool> {
        let mut f = match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(false),
            Err(e) => return Err(e),
        };
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(true)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = fs::read_dir(path)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        out.sort();
        Ok(out)
    }
}

/// Deterministic kill-switch [`Vfs`] for the crash-point sweep.
///
/// The first `budget` operations pass through to [`StdVfs`]; the
/// `budget+1`-th operation "crashes": if it is a write or append, half of
/// its bytes reach the disk first (a torn write, exactly what a power
/// loss mid-`write(2)` produces), then it and **every subsequent
/// operation** fail — the process-model is dead, nothing it tries after
/// the crash point can touch the filesystem. Sweeping `budget` over
/// `0..total_ops` therefore enumerates every crash state one build can
/// leave behind.
#[derive(Debug)]
pub struct CrashVfs {
    inner: StdVfs,
    budget: usize,
    ops: AtomicUsize,
    dead: AtomicBool,
}

impl CrashVfs {
    /// A vfs that dies on the operation after `budget` successes.
    pub fn new(budget: usize) -> Self {
        Self {
            inner: StdVfs,
            budget,
            ops: AtomicUsize::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// Operations attempted so far (including the fatal one).
    pub fn ops_used(&self) -> usize {
        self.ops.load(Ordering::Relaxed)
    }

    /// Whether the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn crash_error(&self) -> io::Error {
        io::Error::other(format!(
            "simulated crash: process killed at filesystem op {}",
            self.budget + 1
        ))
    }

    /// Charges one operation; `Err` means the process is dead.
    fn charge(&self) -> io::Result<()> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(self.crash_error());
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if n >= self.budget {
            self.dead.store(true, Ordering::Relaxed);
            return Err(self.crash_error());
        }
        Ok(())
    }

    /// Charges a write-shaped op: on the fatal op a half-length prefix of
    /// `bytes` still lands (torn write), then the error.
    fn charge_write(
        &self,
        path: &Path,
        bytes: &[u8],
        apply: impl Fn(&StdVfs, &Path, &[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(self.crash_error());
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if n >= self.budget {
            self.dead.store(true, Ordering::Relaxed);
            let torn = &bytes[..bytes.len() / 2];
            if !torn.is_empty() {
                let _ = apply(&self.inner, path, torn);
            }
            return Err(self.crash_error());
        }
        apply(&self.inner, path, bytes)
    }
}

impl Vfs for CrashVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.charge()?;
        self.inner.read(path)
    }

    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.charge_write(path, bytes, |v, p, b| v.write_all(p, b))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.charge_write(path, bytes, |v, p, b| v.append(p, b))
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.fsync_file(path)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.fsync_dir(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.rename(from, to)
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool> {
        // A torn exclusive create is possible for real (power loss after
        // open, before the write lands): model it the same way as a torn
        // write — the file exists with a half prefix.
        if self.dead.load(Ordering::Relaxed) {
            return Err(self.crash_error());
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if n >= self.budget {
            self.dead.store(true, Ordering::Relaxed);
            let torn = &bytes[..bytes.len() / 2];
            let _ = self.inner.create_new(path, torn);
            return Err(self.crash_error());
        }
        self.inner.create_new(path, bytes)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.remove_file(path)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        self.charge()?;
        self.inner.set_len(path, len)
    }

    fn exists(&self, path: &Path) -> bool {
        // Metadata probes cannot tear state and carry no budget: a doomed
        // run may still *observe* the filesystem, every attempt to touch
        // or read it fails above.
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        self.inner.exists(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        self.inner.is_dir(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.charge()?;
        self.inner.read_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips() {
        let dir = tmpdir("std");
        let v = StdVfs;
        let p = dir.join("a.txt");
        v.write_all(&p, b"hello").unwrap();
        v.append(&p, b" world").unwrap();
        v.fsync_file(&p).unwrap();
        v.fsync_dir(&dir).unwrap();
        assert_eq!(v.read(&p).unwrap(), b"hello world");
        v.set_len(&p, 5).unwrap();
        assert_eq!(v.read(&p).unwrap(), b"hello");
        let q = dir.join("b.txt");
        v.rename(&p, &q).unwrap();
        assert!(!v.exists(&p) && v.exists(&q));
        assert_eq!(v.read_dir(&dir).unwrap(), vec![q.clone()]);
        v.remove_file(&q).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_new_is_exclusive() {
        let dir = tmpdir("excl");
        let v = StdVfs;
        let p = dir.join("claim");
        assert!(v.create_new(&p, b"first").unwrap(), "fresh path: created");
        assert!(
            !v.create_new(&p, b"second").unwrap(),
            "existing path: lost the race, nothing written"
        );
        assert_eq!(v.read(&p).unwrap(), b"first");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_vfs_kills_at_the_budget_and_stays_dead() {
        let dir = tmpdir("crash");
        let v = CrashVfs::new(2);
        let a = dir.join("a");
        let b = dir.join("b");
        let c = dir.join("c");
        v.write_all(&a, b"one").unwrap();
        v.write_all(&b, b"two").unwrap();
        // Third op crashes and everything after it fails too.
        assert!(v.write_all(&c, b"three").is_err());
        assert!(v.crashed());
        assert!(v.read(&a).is_err());
        assert!(v.fsync_file(&a).is_err());
        assert!(v.rename(&a, &c).is_err());
        assert!(!v.exists(&a), "a dead process observes nothing");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fatal_write_tears_to_a_half_prefix() {
        let dir = tmpdir("torn");
        let v = CrashVfs::new(0);
        let p = dir.join("torn.bin");
        assert!(v.write_all(&p, b"0123456789").is_err());
        // The torn prefix is visible to a *later* (recovered) process.
        assert_eq!(StdVfs.read(&p).unwrap(), b"01234");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn huge_budget_never_crashes_and_counts_ops() {
        let dir = tmpdir("count");
        let v = CrashVfs::new(usize::MAX);
        let p = dir.join("x");
        v.write_all(&p, b"x").unwrap();
        v.fsync_file(&p).unwrap();
        v.remove_file(&p).unwrap();
        assert_eq!(v.ops_used(), 3);
        assert!(!v.crashed());
        let _ = fs::remove_dir_all(&dir);
    }
}
