//! The store's error taxonomy.
//!
//! Two families matter to callers: I/O failures (plausibly transient —
//! a retry may see a healthy disk) and integrity failures (deterministic
//! — the bytes on disk are wrong and will stay wrong until someone
//! rebuilds them). [`StoreError::is_transient`] encodes that split so the
//! build supervisor can reuse its retry-vs-escalate policy unchanged.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything the artifact store can report.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem operation failed.
    Io(io::Error),
    /// A file's bytes disagree with the checksum recorded for it.
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// CRC32C the sidecar/journal recorded.
        expected: u32,
        /// CRC32C of the bytes actually on disk.
        actual: u32,
    },
    /// A file has no recorded checksum (sidecar absent, or the file is
    /// not listed in it): the entry was never committed.
    MissingChecksum {
        /// File (or sidecar) that has no checksum coverage.
        path: PathBuf,
    },
    /// The sidecar itself does not parse.
    CorruptSidecar {
        /// Sidecar path.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
}

impl StoreError {
    /// Short stable identifier (journal/manifest `cause` vocabulary).
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Io(_) => "io",
            StoreError::ChecksumMismatch { .. } => "checksum-mismatch",
            StoreError::MissingChecksum { .. } => "missing-checksum",
            StoreError::CorruptSidecar { .. } => "corrupt-sidecar",
        }
    }

    /// Whether a plain retry can plausibly succeed (I/O yes; integrity
    /// failures are deterministic until the entry is rebuilt).
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io(_))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
            StoreError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch at {}: recorded {expected:08x}, on-disk {actual:08x}",
                path.display()
            ),
            StoreError::MissingChecksum { path } => {
                write!(f, "no checksum recorded for {}", path.display())
            }
            StoreError::CorruptSidecar { path, detail } => {
                write!(f, "corrupt checksum sidecar {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_split_is_io_vs_integrity() {
        assert!(StoreError::from(io::Error::other("disk")).is_transient());
        assert!(!StoreError::ChecksumMismatch {
            path: "x".into(),
            expected: 1,
            actual: 2
        }
        .is_transient());
        assert!(!StoreError::MissingChecksum { path: "x".into() }.is_transient());
        assert!(!StoreError::CorruptSidecar {
            path: "x".into(),
            detail: "bad".into()
        }
        .is_transient());
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(StoreError::from(io::Error::other("d")).kind(), "io");
        assert_eq!(
            StoreError::MissingChecksum { path: "x".into() }.kind(),
            "missing-checksum"
        );
    }
}
