//! Atomic durable writes and the per-entry `CHECKSUMS` sidecar.
//!
//! Write protocol, per artifact file:
//!
//! 1. write the full payload to `<name>.tmp`
//! 2. fsync the tmp file (data hits the platter before any rename)
//! 3. rename `<name>.tmp` → `<name>` (atomic replace on POSIX)
//! 4. fsync the parent directory (the rename itself becomes durable)
//!
//! A crash at any point leaves either the old file, no file, or a torn
//! `*.tmp` that no reader ever trusts — never a torn `<name>`. On top of
//! that, an [`EntryWriter`] accumulates the CRC32C of every payload it
//! writes and commits them (via the same protocol) as a `CHECKSUMS`
//! sidecar. The sidecar is written *last*, so it doubles as the entry's
//! commit record: [`verify_dir`] refuses any entry whose sidecar is
//! absent, unparseable, incomplete, or disagrees with the bytes on disk.

use crate::checksum::{crc32c, format_crc, parse_crc};
use crate::error::StoreError;
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Name of the per-entry checksum sidecar.
pub const SIDECAR: &str = "CHECKSUMS";

/// Suffix of in-flight temporary files (never trusted by readers).
pub const TMP_SUFFIX: &str = ".tmp";

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(TMP_SUFFIX);
    path.with_file_name(name)
}

/// Writes `bytes` to `path` with the full atomic durable protocol and
/// returns the payload's CRC32C.
pub fn write_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<u32, StoreError> {
    let telemetry = qdb_telemetry::global();
    let started = Instant::now();
    let tmp = tmp_path(path);
    vfs.write_all(&tmp, bytes)?;
    vfs.fsync_file(&tmp)?;
    telemetry.instant("store.fsync");
    vfs.rename(&tmp, path)?;
    telemetry.counter("store.renames").inc();
    telemetry.instant("store.rename");
    if let Some(parent) = path.parent() {
        vfs.fsync_dir(parent)?;
        telemetry.instant("store.fsync");
    }
    telemetry.counter("store.writes").inc();
    telemetry.counter("store.bytes").add(bytes.len() as u64);
    telemetry.counter("store.fsyncs").add(2);
    telemetry
        .histogram("store.write_us")
        .record(started.elapsed().as_micros() as u64);
    Ok(crc32c(bytes))
}

/// Transactional writer for one artifact directory.
///
/// `put` each file, then `commit` — the sidecar lands last, making the
/// whole entry visible to validators in one atomic step.
pub struct EntryWriter<'a> {
    vfs: &'a dyn Vfs,
    dir: PathBuf,
    sums: Vec<(String, u32)>,
}

impl<'a> EntryWriter<'a> {
    /// Starts an entry under `dir`, creating it (and parents) if needed.
    pub fn begin(vfs: &'a dyn Vfs, dir: &Path) -> Result<Self, StoreError> {
        vfs.create_dir_all(dir)?;
        Ok(Self {
            vfs,
            dir: dir.to_path_buf(),
            sums: Vec::new(),
        })
    }

    /// Atomically writes one named file and records its checksum.
    pub fn put(&mut self, name: &str, bytes: &[u8]) -> Result<PathBuf, StoreError> {
        let path = self.dir.join(name);
        let crc = write_atomic(self.vfs, &path, bytes)?;
        self.sums.retain(|(n, _)| n != name);
        self.sums.push((name.to_string(), crc));
        Ok(path)
    }

    /// Commits the entry by writing the `CHECKSUMS` sidecar.
    pub fn commit(self) -> Result<PathBuf, StoreError> {
        let path = self.dir.join(SIDECAR);
        write_atomic(self.vfs, &path, render_sidecar(&self.sums).as_bytes())?;
        Ok(path)
    }
}

fn render_sidecar(sums: &[(String, u32)]) -> String {
    let mut out = String::new();
    for (name, crc) in sums {
        out.push_str("crc32c ");
        out.push_str(&format_crc(*crc));
        out.push(' ');
        out.push_str(name);
        out.push('\n');
    }
    out
}

/// Parses a `CHECKSUMS` sidecar into `(name, crc)` pairs.
pub fn read_sidecar(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<(String, u32)>, StoreError> {
    let path = dir.join(SIDECAR);
    if !vfs.exists(&path) {
        return Err(StoreError::MissingChecksum { path });
    }
    let bytes = vfs.read(&path)?;
    let text = String::from_utf8(bytes).map_err(|_| StoreError::CorruptSidecar {
        path: path.clone(),
        detail: "not valid UTF-8".to_string(),
    })?;
    let mut out = Vec::new();
    for line in text.lines() {
        let mut parts = line.splitn(3, ' ');
        let (algo, crc, name) = (parts.next(), parts.next(), parts.next());
        match (algo, crc.and_then(parse_crc), name) {
            (Some("crc32c"), Some(crc), Some(name)) if !name.is_empty() => {
                out.push((name.to_string(), crc));
            }
            _ => {
                return Err(StoreError::CorruptSidecar {
                    path,
                    detail: format!("unparseable line {line:?}"),
                })
            }
        }
    }
    Ok(out)
}

/// Verifies an entry directory: the sidecar must exist and parse, every
/// `required` file must be listed, and every listed file's bytes must
/// match its recorded CRC32C.
pub fn verify_dir(vfs: &dyn Vfs, dir: &Path, required: &[&str]) -> Result<(), StoreError> {
    let telemetry = qdb_telemetry::global();
    let sums = read_sidecar(vfs, dir)?;
    for name in required {
        if !sums.iter().any(|(n, _)| n == name) {
            return Err(StoreError::MissingChecksum {
                path: dir.join(name),
            });
        }
    }
    for (name, expected) in &sums {
        let path = dir.join(name);
        let bytes = vfs.read(&path)?;
        let actual = crc32c(&bytes);
        if actual != *expected {
            telemetry.counter("store.checksum_failures").inc();
            return Err(StoreError::ChecksumMismatch {
                path,
                expected: *expected,
                actual,
            });
        }
    }
    Ok(())
}

/// Deletes stray `*.tmp` files under `dir` (left by a crash mid-write);
/// returns how many were removed.
pub fn sweep_tmp_files(vfs: &dyn Vfs, dir: &Path) -> Result<usize, StoreError> {
    let mut removed = 0;
    for path in vfs.read_dir(dir)? {
        let is_tmp = path
            .file_name()
            .map(|n| n.to_string_lossy().ends_with(TMP_SUFFIX))
            .unwrap_or(false);
        if is_tmp && !vfs.is_dir(&path) {
            vfs.remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{CrashVfs, StdVfs};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-atomic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entry_write_verify_round_trip() {
        let dir = tmpdir("entry");
        let mut w = EntryWriter::begin(&StdVfs, &dir).unwrap();
        w.put("a.json", b"{\"k\":1}").unwrap();
        w.put("b.pdb", b"ATOM").unwrap();
        w.commit().unwrap();
        verify_dir(&StdVfs, &dir, &["a.json", "b.pdb"]).unwrap();
        // No tmp residue after a clean commit.
        assert_eq!(sweep_tmp_files(&StdVfs, &dir).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sidecar_fails_verification() {
        let dir = tmpdir("nosidecar");
        StdVfs.write_all(&dir.join("a.json"), b"{}").unwrap();
        let err = verify_dir(&StdVfs, &dir, &["a.json"]).unwrap_err();
        assert_eq!(err.kind(), "missing-checksum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unlisted_required_file_fails_verification() {
        let dir = tmpdir("unlisted");
        let mut w = EntryWriter::begin(&StdVfs, &dir).unwrap();
        w.put("a.json", b"{}").unwrap();
        w.commit().unwrap();
        let err = verify_dir(&StdVfs, &dir, &["a.json", "b.json"]).unwrap_err();
        assert_eq!(err.kind(), "missing-checksum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_fails_verification() {
        let dir = tmpdir("flip");
        let mut w = EntryWriter::begin(&StdVfs, &dir).unwrap();
        w.put("a.json", b"{\"k\":12345}").unwrap();
        w.commit().unwrap();
        let path = dir.join("a.json");
        let mut bytes = StdVfs.read(&path).unwrap();
        bytes[3] ^= 0x40;
        StdVfs.write_all(&path, &bytes).unwrap();
        let err = verify_dir(&StdVfs, &dir, &["a.json"]).unwrap_err();
        assert_eq!(err.kind(), "checksum-mismatch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sidecar_is_rejected_not_trusted() {
        let dir = tmpdir("sidecar");
        let mut w = EntryWriter::begin(&StdVfs, &dir).unwrap();
        w.put("a.json", b"{}").unwrap();
        w.commit().unwrap();
        StdVfs
            .write_all(&dir.join(SIDECAR), b"crc32c zzzzzzzz a.json\n")
            .unwrap();
        let err = verify_dir(&StdVfs, &dir, &["a.json"]).unwrap_err();
        assert_eq!(err.kind(), "corrupt-sidecar");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_write_never_leaves_a_torn_visible_file() {
        // Sweep every crash point of a 2-file entry write; at each point
        // the final files either do not exist or carry exact bytes.
        let total = {
            let dir = tmpdir("probe");
            let v = CrashVfs::new(usize::MAX);
            let mut w = EntryWriter::begin(&v, &dir).unwrap();
            w.put("a.json", b"payload-a").unwrap();
            w.put("b.json", b"payload-b").unwrap();
            w.commit().unwrap();
            let n = v.ops_used();
            let _ = std::fs::remove_dir_all(&dir);
            n
        };
        for budget in 0..total {
            let dir = tmpdir(&format!("cut{budget}"));
            let v = CrashVfs::new(budget);
            let outcome = EntryWriter::begin(&v, &dir).and_then(|mut w| {
                w.put("a.json", b"payload-a")?;
                w.put("b.json", b"payload-b")?;
                w.commit()
            });
            assert!(outcome.is_err(), "budget {budget} must crash");
            for (name, payload) in [("a.json", b"payload-a"), ("b.json", b"payload-b")] {
                let path = dir.join(name);
                if path.exists() {
                    assert_eq!(
                        StdVfs.read(&path).unwrap(),
                        payload,
                        "torn visible file at budget {budget}"
                    );
                }
            }
            // And verification only ever passes on a complete entry.
            if verify_dir(&StdVfs, &dir, &["a.json", "b.json"]).is_ok() {
                assert_eq!(StdVfs.read(&dir.join("a.json")).unwrap(), b"payload-a");
                assert_eq!(StdVfs.read(&dir.join("b.json")).unwrap(), b"payload-b");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
