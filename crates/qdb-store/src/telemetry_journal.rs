//! Durable per-worker telemetry: the snapshot journal under a build root.
//!
//! Process-local registries vanish with their process; a fleet build
//! cannot afford that. Each worker owns one append-only
//! [`Journal`] at `telemetry/<worker>.telemetry.journal` and flushes
//! [`WorkerDelta`]s into it — monotone-sequence-numbered, worker-id-
//! stamped deltas of its registry (see
//! [`Snapshot::delta_since`](qdb_telemetry::Snapshot::delta_since)) —
//! through the same checksummed write+fsync path every other store
//! artifact uses. A crash after a flush can therefore cost at most the
//! metrics recorded *since* that flush, never the journal itself: replay
//! truncates a torn tail to the longest valid prefix, exactly like the
//! manifest journal.
//!
//! Reading the fleet back is [`read_worker_deltas`] (scan the directory,
//! replay every journal, parse and order the deltas) followed by
//! [`qdb_telemetry::FleetSnapshot::from_deltas`]; the merged result
//! lands in `fleet_telemetry.json` via the atomic-write protocol.

use crate::error::StoreError;
use crate::journal::Journal;
use crate::vfs::Vfs;
use qdb_telemetry::{Clock, FleetSnapshot, Registry, Snapshot, WorkerDelta};
use std::path::{Path, PathBuf};

/// Directory under the build root holding per-worker telemetry.
pub const TELEMETRY_DIR: &str = "telemetry";

/// Suffix of every per-worker delta journal in [`TELEMETRY_DIR`].
pub const TELEMETRY_JOURNAL_SUFFIX: &str = ".telemetry.journal";

/// File the merged fleet snapshot is written to, under the build root.
pub const FLEET_TELEMETRY_FILE: &str = "fleet_telemetry.json";

/// The build root's telemetry directory.
pub fn telemetry_dir(root: &Path) -> PathBuf {
    root.join(TELEMETRY_DIR)
}

/// A worker id reduced to filesystem-safe characters (anything outside
/// `[A-Za-z0-9._-]` becomes `_`; empty ids become `worker`).
pub fn sanitize_worker_id(worker_id: &str) -> String {
    if worker_id.is_empty() {
        return "worker".to_string();
    }
    worker_id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Path of one worker's delta journal.
pub fn worker_journal_path(root: &Path, worker_id: &str) -> PathBuf {
    telemetry_dir(root).join(format!(
        "{}{TELEMETRY_JOURNAL_SUFFIX}",
        sanitize_worker_id(worker_id)
    ))
}

/// Path of one worker's Chrome-format trace-ring dump.
pub fn worker_trace_path(root: &Path, worker_id: &str) -> PathBuf {
    telemetry_dir(root).join(format!("trace-{}.json", sanitize_worker_id(worker_id)))
}

/// Path of the merged fleet snapshot.
pub fn fleet_telemetry_path(root: &Path) -> PathBuf {
    root.join(FLEET_TELEMETRY_FILE)
}

/// The stateful flush side: owns one worker's journal, remembers the
/// last flushed snapshot, and appends only what changed.
///
/// Sequence numbers are monotone per worker id **across process lives**:
/// opening replays the journal (repairing a torn tail) and resumes past
/// the highest sequence found, so a restarted worker extends its history
/// instead of reusing numbers. The previous-snapshot baseline starts
/// empty on open — a new process's registry starts from zero, so its
/// first delta is its full registry, which is exactly the increment the
/// new life contributed.
pub struct WorkerFlusher<'a> {
    journal: Journal<'a>,
    worker_id: String,
    next_seq: u64,
    prev: Snapshot,
}

impl<'a> WorkerFlusher<'a> {
    /// Opens (creating on first flush) the journal for `worker_id` under
    /// `root`, resuming the sequence past any existing records.
    pub fn open(vfs: &'a dyn Vfs, root: &Path, worker_id: &str) -> Result<Self, StoreError> {
        let journal = Journal::open(vfs, worker_journal_path(root, worker_id));
        let replay = journal.replay(true)?;
        let next_seq = replay
            .records
            .iter()
            .filter_map(|line| WorkerDelta::from_line(line).ok())
            .map(|d| d.seq + 1)
            .max()
            .unwrap_or(0);
        Ok(Self {
            journal,
            worker_id: worker_id.to_string(),
            next_seq,
            prev: Snapshot::default(),
        })
    }

    /// The worker id this flusher stamps on every delta.
    pub fn worker_id(&self) -> &str {
        &self.worker_id
    }

    /// Sequence number the next flushed delta will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Flushes the registry's delta since the previous flush, stamped
    /// `kind` and timestamped from `clock` (wall milliseconds). Returns
    /// `Ok(false)` without touching disk when the delta is empty and
    /// `kind` is `"periodic"` — idle heartbeats don't grow the journal —
    /// while every other kind appends even an empty delta, so lifecycle
    /// markers (`"start"`, `"exit"`, `"error"`) always leave a record.
    pub fn flush(
        &mut self,
        registry: &Registry,
        clock: &dyn Clock,
        kind: &str,
    ) -> Result<bool, StoreError> {
        let snap = registry.snapshot();
        let delta = snap.delta_since(&self.prev);
        if delta.is_empty() && kind == "periodic" {
            return Ok(false);
        }
        let record = WorkerDelta {
            version: WorkerDelta::VERSION,
            worker_id: self.worker_id.clone(),
            seq: self.next_seq,
            flushed_at_ms: clock.now_ns() / 1_000_000,
            kind: kind.to_string(),
            delta,
        };
        self.journal.append(&record.to_line())?;
        self.prev = snap;
        self.next_seq += 1;
        Ok(true)
    }
}

/// Replays every worker journal under `root` and returns all valid
/// deltas, ordered by `(worker id, seq)`. A missing telemetry directory
/// reads as an empty fleet; lines that fail to parse (future versions)
/// are skipped — the journal's checksum framing already dropped torn or
/// corrupt tails during each file's replay.
pub fn read_worker_deltas(vfs: &dyn Vfs, root: &Path) -> Result<Vec<WorkerDelta>, StoreError> {
    let dir = telemetry_dir(root);
    if !vfs.exists(&dir) {
        return Ok(Vec::new());
    }
    let mut deltas = Vec::new();
    let mut paths = vfs.read_dir(&dir)?;
    paths.sort();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.ends_with(TELEMETRY_JOURNAL_SUFFIX) {
            continue;
        }
        let replay = Journal::open(vfs, path.clone()).replay(false)?;
        deltas.extend(
            replay
                .records
                .iter()
                .filter_map(|line| WorkerDelta::from_line(line).ok()),
        );
    }
    deltas.sort_by(|a, b| (&a.worker_id, a.seq).cmp(&(&b.worker_id, b.seq)));
    Ok(deltas)
}

/// Merges every worker journal under `root` into one fleet snapshot.
pub fn merge_worker_deltas(vfs: &dyn Vfs, root: &Path) -> Result<FleetSnapshot, StoreError> {
    Ok(FleetSnapshot::from_deltas(&read_worker_deltas(vfs, root)?))
}

/// Writes the merged fleet snapshot to `fleet_telemetry.json` under
/// `root` via the atomic-write/CRC protocol.
pub fn write_fleet_snapshot(
    vfs: &dyn Vfs,
    root: &Path,
    fleet: &FleetSnapshot,
) -> Result<(), StoreError> {
    crate::atomic::write_atomic(vfs, &fleet_telemetry_path(root), fleet.to_json().as_bytes())
        .map(|_crc| ())
}

/// Reads a previously written fleet snapshot back.
pub fn read_fleet_snapshot(vfs: &dyn Vfs, root: &Path) -> Result<FleetSnapshot, StoreError> {
    let bytes = vfs.read(&fleet_telemetry_path(root))?;
    let text = String::from_utf8_lossy(&bytes);
    FleetSnapshot::from_json(&text)
        .map_err(|e| StoreError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;
    use qdb_telemetry::ManualClock;

    fn tmproot(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qdb-telem-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn flush_read_merge_round_trip() {
        let root = tmproot("rt");
        let clock = ManualClock::new();
        let registry = Registry::new();
        let mut flusher = WorkerFlusher::open(&StdVfs, &root, "w0").unwrap();

        registry.counter("fragments").add(3);
        registry.gauge("depth").set(5);
        registry.histogram("h").record(1_000);
        clock.advance_ms(10);
        assert!(flusher.flush(&registry, &clock, "shard").unwrap());

        registry.counter("fragments").add(2);
        clock.advance_ms(10);
        assert!(flusher.flush(&registry, &clock, "exit").unwrap());

        let deltas = read_worker_deltas(&StdVfs, &root).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].seq, 0);
        assert_eq!(deltas[1].seq, 1);
        assert_eq!(deltas[0].delta.counters["fragments"], 3);
        assert_eq!(deltas[1].delta.counters["fragments"], 2);
        assert_eq!(deltas[1].flushed_at_ms, 20);
        // Second delta omits the unchanged gauge and histogram.
        assert!(deltas[1].delta.gauges.is_empty());
        assert!(deltas[1].delta.histograms.is_empty());

        let fleet = merge_worker_deltas(&StdVfs, &root).unwrap();
        assert_eq!(fleet.counters["fragments"], 5);
        assert_eq!(fleet.gauges["depth"].value, 5);
        assert_eq!(fleet.histograms["h"].count, 1);
        assert!(fleet.identity_problems().is_empty());

        write_fleet_snapshot(&StdVfs, &root, &fleet).unwrap();
        assert_eq!(read_fleet_snapshot(&StdVfs, &root).unwrap(), fleet);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_periodic_flushes_skip_but_lifecycle_kinds_append() {
        let root = tmproot("idle");
        let clock = ManualClock::new();
        let registry = Registry::new();
        let mut flusher = WorkerFlusher::open(&StdVfs, &root, "w0").unwrap();
        assert!(flusher.flush(&registry, &clock, "start").unwrap());
        assert!(!flusher.flush(&registry, &clock, "periodic").unwrap());
        assert!(flusher.flush(&registry, &clock, "exit").unwrap());
        let deltas = read_worker_deltas(&StdVfs, &root).unwrap();
        let kinds: Vec<&str> = deltas.iter().map(|d| d.kind.as_str()).collect();
        assert_eq!(kinds, ["start", "exit"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restarted_worker_resumes_its_sequence() {
        let root = tmproot("resume");
        let clock = ManualClock::new();
        {
            let registry = Registry::new();
            registry.counter("c").inc();
            let mut flusher = WorkerFlusher::open(&StdVfs, &root, "wA").unwrap();
            flusher.flush(&registry, &clock, "start").unwrap();
            flusher.flush(&registry, &clock, "exit").unwrap();
        }
        // Same worker id, new process life: fresh registry, resumed seq.
        let registry = Registry::new();
        registry.counter("c").add(4);
        let mut flusher = WorkerFlusher::open(&StdVfs, &root, "wA").unwrap();
        assert_eq!(flusher.next_seq(), 2);
        flusher.flush(&registry, &clock, "exit").unwrap();
        let deltas = read_worker_deltas(&StdVfs, &root).unwrap();
        assert_eq!(
            deltas.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Both lives' counter increments sum in the merge.
        let fleet = FleetSnapshot::from_deltas(&deltas);
        assert_eq!(fleet.counters["c"], 5);
        assert_eq!(fleet.workers["wA"].flushes, 3);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_costs_only_the_unflushed_delta() {
        let root = tmproot("torn");
        let clock = ManualClock::new();
        let registry = Registry::new();
        let mut flusher = WorkerFlusher::open(&StdVfs, &root, "w0").unwrap();
        registry.counter("c").add(7);
        flusher.flush(&registry, &clock, "shard").unwrap();
        // A torn half-line after the valid record (crash mid-append).
        let path = worker_journal_path(&root, "w0");
        StdVfs.append(&path, b"deadbeef {\"vers").unwrap();
        let deltas = read_worker_deltas(&StdVfs, &root).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].delta.counters["c"], 7);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn multiple_workers_merge_and_ids_sanitize() {
        let root = tmproot("multi");
        let clock = ManualClock::new();
        for (id, n) in [("w/0", 2u64), ("w 1", 3)] {
            let registry = Registry::new();
            registry.counter("frags").add(n);
            let mut flusher = WorkerFlusher::open(&StdVfs, &root, id).unwrap();
            flusher.flush(&registry, &clock, "exit").unwrap();
        }
        assert_eq!(sanitize_worker_id("w/0"), "w_0");
        assert_eq!(sanitize_worker_id(""), "worker");
        let fleet = merge_worker_deltas(&StdVfs, &root).unwrap();
        assert_eq!(fleet.counters["frags"], 5);
        assert_eq!(fleet.workers.len(), 2);
        assert!(
            fleet.workers.contains_key("w/0"),
            "ids stay unsanitized in data"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
