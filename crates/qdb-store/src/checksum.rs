//! CRC32C (Castagnoli) implemented in-crate.
//!
//! The store needs a content checksum that is cheap, well-specified, and
//! available without pulling a dependency into the no-network build.
//! CRC32C fits: the polynomial (0x1EDC6F41, reflected 0x82F63B78) has
//! better error-detection properties than CRC32 for short messages, it is
//! the checksum iSCSI/ext4/LevelDB settled on for exactly this job, and a
//! slice-by-one table implementation is fast enough for dataset entries
//! that are a few kilobytes each.

const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32C of `bytes` (standard init/finalize: `!0` both ways).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Renders a checksum the way sidecars and journal lines store it.
pub fn format_crc(crc: u32) -> String {
    format!("{crc:08x}")
}

/// Parses the 8-hex-digit form written by [`format_crc`].
pub fn parse_crc(text: &str) -> Option<u32> {
    if text.len() != 8 {
        return None;
    }
    u32::from_str_radix(text, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The RFC 3720 check value for "123456789".
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // iSCSI test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn sensitive_to_any_single_byte_flip() {
        let base = b"QDockBank fragment entry payload".to_vec();
        let reference = crc32c(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn format_parse_round_trip() {
        for crc in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(parse_crc(&format_crc(crc)), Some(crc));
        }
        assert_eq!(parse_crc("xyz"), None);
        assert_eq!(parse_crc("123"), None);
        assert_eq!(parse_crc("0123456789"), None);
    }
}
