//! Durable shard leases with fencing tokens.
//!
//! A sharded dataset build spreads its fragment list over N shards, each
//! owned by at most one worker process at a time. Ownership is a lease
//! file under `<root>/leases/shard-<k>.lease`. Claims go through an
//! exclusive create (`O_EXCL`, [`Vfs::create_new`]) so the *filesystem*
//! arbitrates racing claimants — exactly one wins; renewals and releases
//! by the established holder go through the same atomic overwrite
//! protocol as every other artifact (tmp → fsync → rename → fsync dir),
//! so a lease is never torn — a reader sees the old lease, the new
//! lease, or (before first acquisition) none.
//!
//! Correctness rests on two mechanisms, deliberately separated:
//!
//! * **Heartbeat deadlines** (liveness): every lease carries an
//!   `expires_ns` deadline on the [`Clock`] seam. A holder renews it at
//!   work boundaries; a lease past its deadline is claimable by any live
//!   worker. Deadlines only decide *when* takeover is allowed — they are
//!   never trusted to decide *who may write*.
//! * **Fencing tokens** (safety): every acquisition — first claim, steal
//!   of an expired lease, or re-acquisition by a restarted worker —
//!   bumps a monotone `token`. A writer must present its token before
//!   every journal append ([`LeaseManager::check`]); the append is
//!   rejected unless the on-disk lease still names exactly that
//!   `(owner, token)` pair. A zombie worker that lost its lease while
//!   stalled therefore cannot corrupt the journal no matter how alive it
//!   feels: its token is stale the moment a successor acquires.
//!
//! Deadlines are compared on whatever clock the caller supplies:
//! [`ManualClock`](qdb_telemetry::ManualClock) in the deterministic chaos
//! suites, [`WallClock`](qdb_telemetry::WallClock) in real multi-process
//! builds (per-process monotonic epochs are meaningless across workers).
//!
//! Telemetry: `store.lease.acquires`, `.renews`, `.releases`, `.steals`,
//! `.fenced`, `.held_rejections`, `.corrupt_reclaimed`, `.swept` counters
//! on the global registry.

use crate::atomic::write_atomic;
use crate::checksum::{crc32c, format_crc, parse_crc};
use crate::error::StoreError;
use crate::vfs::Vfs;
use qdb_telemetry::Clock;
use std::fmt;
use std::path::{Path, PathBuf};

/// Directory under the dataset root holding one lease file per shard.
pub const LEASE_DIR: &str = "leases";

/// A parsed on-disk lease record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaseState {
    /// Shard index this lease governs.
    pub shard: usize,
    /// Fencing token; bumped on every acquisition, constant across
    /// renewals.
    pub token: u64,
    /// Worker id of the holder.
    pub owner: String,
    /// Clock reading at acquisition (ns).
    pub acquired_ns: u64,
    /// Heartbeat deadline (ns): past this, the lease is claimable.
    pub expires_ns: u64,
    /// Whether the holder released cleanly (the file is kept so the
    /// token history survives; the next acquisition still bumps it).
    pub released: bool,
}

/// What [`LeaseManager::inspect`] found for one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeaseView {
    /// No lease file: the shard has never been claimed.
    Free,
    /// Live lease: unreleased, deadline not passed.
    Held(LeaseState),
    /// Unreleased but past its heartbeat deadline: claimable.
    Expired(LeaseState),
    /// Cleanly released: claimable.
    Released(LeaseState),
    /// Unreadable or checksum-invalid lease file: claimable (the token
    /// is salvaged best-effort so monotonicity survives where possible).
    Corrupt {
        /// Why the file was rejected.
        detail: String,
        /// Best-effort token salvage for the next acquisition's bump.
        salvaged_token: u64,
    },
}

impl LeaseView {
    /// Short label for reports: "free", "held", "expired", "released",
    /// or "corrupt".
    pub fn label(&self) -> &'static str {
        match self {
            LeaseView::Free => "free",
            LeaseView::Held(_) => "held",
            LeaseView::Expired(_) => "expired",
            LeaseView::Released(_) => "released",
            LeaseView::Corrupt { .. } => "corrupt",
        }
    }

    /// Whether an acquisition may proceed against this view.
    pub fn claimable(&self) -> bool {
        !matches!(self, LeaseView::Held(_))
    }
}

/// A lease held in memory by the worker that acquired it. The on-disk
/// file is the authority; this is the worker's claim ticket, validated
/// by [`LeaseManager::check`] before every fenced write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Shard index.
    pub shard: usize,
    /// Fencing token this acquisition was granted.
    pub token: u64,
    /// Worker id the token was granted to.
    pub owner: String,
    /// Deadline as of the last acquire/renew (ns).
    pub expires_ns: u64,
}

/// Lease-protocol failures.
#[derive(Debug)]
pub enum LeaseError {
    /// The shard is held by a live (unexpired) lease of another worker.
    Held {
        /// Shard index.
        shard: usize,
        /// Current holder.
        owner: String,
        /// Milliseconds until the holder's deadline passes.
        remaining_ms: u64,
    },
    /// The presented token is stale: the on-disk lease no longer names
    /// this `(owner, token)` pair. The caller's shard was stolen (or
    /// released and re-claimed); it must stop writing immediately.
    Fenced {
        /// Shard index.
        shard: usize,
        /// Token the writer presented.
        presented: u64,
        /// Current on-disk holder and token, if readable.
        current: Option<(String, u64)>,
    },
    /// Underlying store failure.
    Store(StoreError),
}

impl LeaseError {
    /// Short stable identifier ("lease-held", "lease-fenced", or the
    /// wrapped store kind).
    pub fn kind(&self) -> &'static str {
        match self {
            LeaseError::Held { .. } => "lease-held",
            LeaseError::Fenced { .. } => "lease-fenced",
            LeaseError::Store(e) => e.kind(),
        }
    }
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::Held {
                shard,
                owner,
                remaining_ms,
            } => write!(
                f,
                "shard {shard} lease held by {owner:?} for another {remaining_ms} ms"
            ),
            LeaseError::Fenced {
                shard,
                presented,
                current,
            } => match current {
                Some((owner, token)) => write!(
                    f,
                    "shard {shard} fencing rejected token {presented}: \
                     lease now held by {owner:?} with token {token}"
                ),
                None => write!(
                    f,
                    "shard {shard} fencing rejected token {presented}: lease unreadable"
                ),
            },
            LeaseError::Store(e) => write!(f, "lease store operation failed: {e}"),
        }
    }
}

impl std::error::Error for LeaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LeaseError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for LeaseError {
    fn from(e: StoreError) -> Self {
        LeaseError::Store(e)
    }
}

/// One shard's line in a [`LeaseManager::sweep`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaseSweepEntry {
    /// Shard index parsed from the file name (`None` for a file whose
    /// name does not parse — always removed as orphaned).
    pub shard: Option<usize>,
    /// State label at sweep time ("held", "expired", "released",
    /// "corrupt", or "orphaned" for an out-of-plan shard index).
    pub status: String,
    /// Holder, when the file was readable.
    pub owner: Option<String>,
    /// Token, when the file was readable.
    pub token: Option<u64>,
    /// Whether the sweep removed the file.
    pub removed: bool,
}

/// What a lease sweep found and cleaned.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LeaseSweep {
    /// Every lease file examined, in shard order.
    pub entries: Vec<LeaseSweepEntry>,
    /// Files removed (expired, released, corrupt, or orphaned).
    pub removed: usize,
}

/// Manages the lease files of one dataset root on explicit [`Vfs`] and
/// [`Clock`] seams.
pub struct LeaseManager<'a> {
    vfs: &'a dyn Vfs,
    clock: &'a dyn Clock,
    dir: PathBuf,
    ttl_ms: u64,
}

impl<'a> LeaseManager<'a> {
    /// A manager for the leases under `<root>/leases/` granting
    /// `ttl_ms`-millisecond heartbeat deadlines.
    pub fn new(vfs: &'a dyn Vfs, clock: &'a dyn Clock, root: &Path, ttl_ms: u64) -> Self {
        Self {
            vfs,
            clock,
            dir: root.join(LEASE_DIR),
            ttl_ms: ttl_ms.max(1),
        }
    }

    /// The lease TTL granted on acquire/renew (ms).
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    /// On-disk path of one shard's lease file.
    pub fn lease_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.lease"))
    }

    /// Reads one shard's lease state as of the manager's clock.
    pub fn inspect(&self, shard: usize) -> LeaseView {
        let path = self.lease_path(shard);
        if !self.vfs.exists(&path) {
            return LeaseView::Free;
        }
        let bytes = match self.vfs.read(&path) {
            Ok(b) => b,
            Err(e) => {
                return LeaseView::Corrupt {
                    detail: format!("unreadable: {e}"),
                    salvaged_token: 0,
                }
            }
        };
        match parse_lease(&bytes) {
            Ok(state) => {
                if state.released {
                    LeaseView::Released(state)
                } else if self.clock.now_ns() > state.expires_ns {
                    LeaseView::Expired(state)
                } else {
                    LeaseView::Held(state)
                }
            }
            Err((detail, salvaged_token)) => LeaseView::Corrupt {
                detail,
                salvaged_token,
            },
        }
    }

    /// Acquires the shard for `owner`, bumping the fencing token.
    ///
    /// Succeeds against a free, released, expired, or corrupt lease —
    /// and against the caller's *own* live lease (a restarted worker
    /// re-claims its shard; the bump fences its previous incarnation).
    /// Fails with [`LeaseError::Held`] while another worker's lease is
    /// live, or when a concurrent claimant wins the race for a claimable
    /// shard.
    ///
    /// Claims are arbitrated by the filesystem: stale debris (expired,
    /// released, or corrupt lease file) is removed and the new lease is
    /// written with an exclusive create ([`Vfs::create_new`]), so of two
    /// workers racing for the same shard exactly one observes the create
    /// succeed — a read-check-then-overwrite would let both "win". The
    /// one overwrite left is re-acquisition of the caller's own live
    /// lease, which no other worker may claim. Any residual interleaving
    /// (a thief un-linking a just-written winner between its own inspect
    /// and create) can at worst duplicate compute, never corrupt state:
    /// the journal fence re-reads the lease before every append and the
    /// loser's `(owner, token)` no longer matches.
    pub fn acquire(&self, shard: usize, owner: &str) -> Result<Lease, LeaseError> {
        let telemetry = qdb_telemetry::global();
        let view = self.inspect(shard);
        let prior_token = match &view {
            LeaseView::Free => 0,
            LeaseView::Released(s) | LeaseView::Expired(s) => s.token,
            LeaseView::Held(s) if s.owner == owner => s.token,
            LeaseView::Held(s) => {
                telemetry.counter("store.lease.held_rejections").inc();
                return Err(LeaseError::Held {
                    shard,
                    owner: s.owner.clone(),
                    remaining_ms: s.expires_ns.saturating_sub(self.clock.now_ns()) / 1_000_000,
                });
            }
            LeaseView::Corrupt { salvaged_token, .. } => *salvaged_token,
        };
        let now = self.clock.now_ns();
        let state = LeaseState {
            shard,
            token: prior_token + 1,
            owner: owner.to_string(),
            acquired_ns: now,
            expires_ns: now.saturating_add(self.ttl_ms.saturating_mul(1_000_000)),
            released: false,
        };
        if matches!(view, LeaseView::Held(_)) {
            // Own live lease: peers are locked out by the Held rejection
            // above, so the token bump may simply overwrite.
            self.write_state(&state)?;
        } else {
            let path = self.lease_path(shard);
            self.vfs
                .create_dir_all(&self.dir)
                .map_err(StoreError::from)?;
            if !matches!(view, LeaseView::Free) {
                match self.vfs.remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(LeaseError::Store(StoreError::from(e))),
                }
            }
            let won = self
                .vfs
                .create_new(&path, render_lease(&state).as_bytes())
                .map_err(StoreError::from)?;
            if !won {
                // A concurrent claimant's exclusive create landed first.
                telemetry.counter("store.lease.held_rejections").inc();
                let (cur_owner, remaining_ms) = match self.inspect(shard) {
                    LeaseView::Held(s) | LeaseView::Expired(s) | LeaseView::Released(s) => {
                        let left = s.expires_ns.saturating_sub(self.clock.now_ns());
                        (s.owner, left / 1_000_000)
                    }
                    _ => ("<unknown>".to_string(), 0),
                };
                return Err(LeaseError::Held {
                    shard,
                    owner: cur_owner,
                    remaining_ms,
                });
            }
        }
        match &view {
            LeaseView::Expired(s) if s.owner != owner => {
                telemetry.counter("store.lease.steals").inc();
                telemetry.instant("store.lease.steal");
            }
            LeaseView::Corrupt { .. } => {
                telemetry.counter("store.lease.corrupt_reclaimed").inc();
            }
            _ => {}
        }
        telemetry.counter("store.lease.acquires").inc();
        telemetry.instant("store.lease.acquire");
        Ok(Lease {
            shard,
            token: state.token,
            owner: state.owner,
            expires_ns: state.expires_ns,
        })
    }

    /// Heartbeat: extends the deadline of a lease this worker still
    /// holds. The token is unchanged. Fails with [`LeaseError::Fenced`]
    /// if the lease was stolen (or otherwise re-acquired) since.
    pub fn renew(&self, lease: &mut Lease) -> Result<(), LeaseError> {
        let state = self.current_or_fenced(lease)?;
        let now = self.clock.now_ns();
        let renewed = LeaseState {
            expires_ns: now.saturating_add(self.ttl_ms.saturating_mul(1_000_000)),
            ..state
        };
        self.write_state(&renewed)?;
        lease.expires_ns = renewed.expires_ns;
        let telemetry = qdb_telemetry::global();
        telemetry.counter("store.lease.renews").inc();
        Ok(())
    }

    /// Releases a lease this worker still holds. The file is rewritten
    /// as released (not deleted) so the token history survives for the
    /// next acquisition's bump.
    pub fn release(&self, lease: &Lease) -> Result<(), LeaseError> {
        let state = self.current_or_fenced(lease)?;
        self.write_state(&LeaseState {
            released: true,
            ..state
        })?;
        qdb_telemetry::global()
            .counter("store.lease.releases")
            .inc();
        Ok(())
    }

    /// The fencing check: verifies the on-disk lease still names exactly
    /// this `(owner, token)` pair. Callers run this before every journal
    /// append; a stale writer gets [`LeaseError::Fenced`], never a
    /// successful write.
    ///
    /// Deliberately ignores expiry: an expired-but-unstolen lease still
    /// has a unique writer (deadlines gate takeover, tokens gate
    /// writes). The holder's next renew restores the deadline.
    pub fn check(&self, lease: &Lease) -> Result<(), LeaseError> {
        self.current_or_fenced(lease).map(|_| ())
    }

    fn current_or_fenced(&self, lease: &Lease) -> Result<LeaseState, LeaseError> {
        let fenced = |current: Option<(String, u64)>| {
            qdb_telemetry::global().counter("store.lease.fenced").inc();
            qdb_telemetry::global().instant("store.lease.fenced");
            Err(LeaseError::Fenced {
                shard: lease.shard,
                presented: lease.token,
                current,
            })
        };
        match self.inspect(lease.shard) {
            LeaseView::Held(s) | LeaseView::Expired(s) => {
                if s.token == lease.token && s.owner == lease.owner {
                    Ok(s)
                } else {
                    fenced(Some((s.owner, s.token)))
                }
            }
            LeaseView::Released(s) => fenced(Some((s.owner, s.token))),
            LeaseView::Free | LeaseView::Corrupt { .. } => fenced(None),
        }
    }

    /// Scans every lease file under the root: expired, released,
    /// corrupt, and (given a plan size) orphaned files are removed;
    /// live leases are reported and kept. This is fsck's lease pass.
    pub fn sweep(&self, num_shards: Option<usize>) -> Result<LeaseSweep, StoreError> {
        let mut report = LeaseSweep::default();
        if !self.vfs.is_dir(&self.dir) {
            return Ok(report);
        }
        for path in self.vfs.read_dir(&self.dir)? {
            let shard = parse_lease_file_name(&path);
            let orphaned = match (shard, num_shards) {
                (None, _) => true,
                (Some(k), Some(n)) => k >= n,
                (Some(_), None) => false,
            };
            let view = match shard {
                Some(k) => self.inspect(k),
                None => LeaseView::Corrupt {
                    detail: "unparseable lease file name".to_string(),
                    salvaged_token: 0,
                },
            };
            let (owner, token) = match &view {
                LeaseView::Held(s) | LeaseView::Expired(s) | LeaseView::Released(s) => {
                    (Some(s.owner.clone()), Some(s.token))
                }
                _ => (None, None),
            };
            let status = if orphaned { "orphaned" } else { view.label() }.to_string();
            let removed = orphaned || !matches!(view, LeaseView::Held(_));
            if removed {
                self.vfs.remove_file(&path)?;
                report.removed += 1;
                qdb_telemetry::global().counter("store.lease.swept").inc();
            }
            report.entries.push(LeaseSweepEntry {
                shard,
                status,
                owner,
                token,
                removed,
            });
        }
        report.entries.sort_by_key(|e| e.shard);
        Ok(report)
    }

    fn write_state(&self, state: &LeaseState) -> Result<(), StoreError> {
        self.vfs.create_dir_all(&self.dir)?;
        write_atomic(
            self.vfs,
            &self.lease_path(state.shard),
            render_lease(state).as_bytes(),
        )?;
        Ok(())
    }
}

fn parse_lease_file_name(path: &Path) -> Option<usize> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("shard-")?
        .strip_suffix(".lease")?
        .parse()
        .ok()
}

/// Renders a lease file: a CRC32C header line over the key-value payload
/// that follows. The atomic write protocol already rules out torn lease
/// files; the checksum additionally catches bit rot and hand edits.
fn render_lease(state: &LeaseState) -> String {
    let payload = format!(
        "shard {}\ntoken {}\nowner {}\nacquired_ns {}\nexpires_ns {}\nreleased {}\n",
        state.shard,
        state.token,
        state.owner,
        state.acquired_ns,
        state.expires_ns,
        u8::from(state.released),
    );
    format!(
        "crc32c {}\n{payload}",
        format_crc(crc32c(payload.as_bytes()))
    )
}

/// Parses a lease file; `Err` carries a reason plus the best-effort
/// token salvage (so a corrupt file's reclaim still bumps past it).
fn parse_lease(bytes: &[u8]) -> Result<LeaseState, (String, u64)> {
    let text = std::str::from_utf8(bytes).map_err(|_| ("not valid UTF-8".to_string(), 0))?;
    let salvage = || {
        text.lines()
            .find_map(|l| l.strip_prefix("token "))
            .and_then(|t| t.trim().parse().ok())
            .unwrap_or(0)
    };
    let Some((header, payload)) = text.split_once('\n') else {
        return Err(("missing checksum header".to_string(), salvage()));
    };
    let expected = header
        .strip_prefix("crc32c ")
        .and_then(parse_crc)
        .ok_or_else(|| ("malformed checksum header".to_string(), salvage()))?;
    if crc32c(payload.as_bytes()) != expected {
        return Err(("checksum mismatch".to_string(), salvage()));
    }
    let field = |key: &str| -> Result<&str, (String, u64)> {
        payload
            .lines()
            .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix(' ')))
            .ok_or_else(|| (format!("missing field {key:?}"), salvage()))
    };
    let num = |key: &str| -> Result<u64, (String, u64)> {
        field(key)?
            .trim()
            .parse()
            .map_err(|_| (format!("unparseable field {key:?}"), salvage()))
    };
    Ok(LeaseState {
        shard: num("shard")? as usize,
        token: num("token")?,
        owner: field("owner")?.to_string(),
        acquired_ns: num("acquired_ns")?,
        expires_ns: num("expires_ns")?,
        released: num("released")? != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;
    use qdb_telemetry::ManualClock;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-lease-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_renew_release_round_trip() {
        let root = tmpdir("rt");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        let mut lease = m.acquire(0, "w0").unwrap();
        assert_eq!(lease.token, 1);
        assert!(matches!(m.inspect(0), LeaseView::Held(_)));
        m.check(&lease).unwrap();

        clock.advance_ms(600);
        m.renew(&mut lease).unwrap();
        assert_eq!(lease.token, 1, "renewal never bumps the token");
        clock.advance_ms(600);
        // Without the renewal this would be past the original deadline.
        assert!(matches!(m.inspect(0), LeaseView::Held(_)));
        m.release(&lease).unwrap();
        assert!(matches!(m.inspect(0), LeaseView::Released(_)));
        // Released leases are claimable and the token keeps climbing.
        let next = m.acquire(0, "w1").unwrap();
        assert_eq!(next.token, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn live_lease_of_another_worker_rejects_acquisition() {
        let root = tmpdir("held");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        m.acquire(3, "w0").unwrap();
        let err = m.acquire(3, "w1").unwrap_err();
        let LeaseError::Held {
            shard,
            owner,
            remaining_ms,
        } = err
        else {
            panic!("expected Held, got {err}");
        };
        assert_eq!((shard, owner.as_str()), (3, "w0"));
        assert!(remaining_ms <= 1_000);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn expired_lease_is_stolen_with_a_bumped_token() {
        let root = tmpdir("steal");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        let stale = m.acquire(0, "w0").unwrap();
        clock.advance_ms(1_001);
        assert!(matches!(m.inspect(0), LeaseView::Expired(_)));
        let stolen = m.acquire(0, "w1").unwrap();
        assert_eq!(stolen.token, 2);
        // The zombie's every move is now fenced.
        assert!(matches!(
            m.check(&stale),
            Err(LeaseError::Fenced { presented: 1, .. })
        ));
        let mut stale_mut = stale.clone();
        assert!(m.renew(&mut stale_mut).is_err());
        assert!(m.release(&stale).is_err());
        // And the thief's lease is fully operational.
        m.check(&stolen).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restarted_owner_reacquires_and_fences_its_past_self() {
        let root = tmpdir("restart");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        let first_life = m.acquire(0, "w0").unwrap();
        // Same worker id, new process: allowed even while live, but the
        // bump fences the previous incarnation's in-memory lease.
        let second_life = m.acquire(0, "w0").unwrap();
        assert_eq!(second_life.token, 2);
        assert!(m.check(&first_life).is_err());
        m.check(&second_life).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn expired_but_unstolen_lease_still_passes_the_fencing_check() {
        let root = tmpdir("grace");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        let mut lease = m.acquire(0, "w0").unwrap();
        clock.advance_ms(5_000);
        // Nobody stole it: the token is still uniquely ours, writes are
        // safe, and a renew restores the deadline.
        m.check(&lease).unwrap();
        m.renew(&mut lease).unwrap();
        assert!(matches!(m.inspect(0), LeaseView::Held(_)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_lease_is_reclaimable_and_salvages_the_token() {
        let root = tmpdir("corrupt");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        m.acquire(0, "w0").unwrap();
        // Flip a payload byte: the checksum header no longer matches.
        let path = m.lease_path(0);
        let mut bytes = std::fs::read(&path).unwrap();
        let off = bytes.len() - 3;
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let LeaseView::Corrupt { salvaged_token, .. } = m.inspect(0) else {
            panic!("flip must corrupt the lease");
        };
        assert_eq!(salvaged_token, 1, "token line salvaged from the wreck");
        let lease = m.acquire(0, "w1").unwrap();
        assert_eq!(lease.token, 2, "reclaim bumps past the salvage");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sweep_cleans_everything_but_live_leases() {
        let root = tmpdir("sweep");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, 1_000);
        // shard 0: released; shard 1: live; shard 2: expired;
        // shard 7: orphaned under a 4-shard plan; plus a corrupt file.
        let l0 = m.acquire(0, "w0").unwrap();
        m.release(&l0).unwrap();
        m.acquire(1, "w1").unwrap();
        m.acquire(2, "w2").unwrap();
        m.acquire(7, "w7").unwrap();
        clock.advance_ms(1_001);
        let mut keep_alive = m.acquire(1, "w1").unwrap();
        m.renew(&mut keep_alive).unwrap();
        std::fs::write(root.join(LEASE_DIR).join("shard-3.lease"), b"junk").unwrap();

        let report = m.sweep(Some(4)).unwrap();
        assert_eq!(report.entries.len(), 5);
        assert_eq!(report.removed, 4);
        let by_shard = |k: usize| report.entries.iter().find(|e| e.shard == Some(k)).unwrap();
        assert_eq!(by_shard(0).status, "released");
        assert!(by_shard(0).removed);
        assert_eq!(by_shard(1).status, "held");
        assert!(!by_shard(1).removed);
        assert_eq!(by_shard(2).status, "expired");
        assert!(by_shard(2).removed);
        assert_eq!(by_shard(3).status, "corrupt");
        assert_eq!(by_shard(7).status, "orphaned");
        // Only the live lease file survives on disk.
        assert!(m.lease_path(1).exists());
        for k in [0, 2, 3, 7] {
            assert!(!m.lease_path(k).exists(), "shard {k} should be swept");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn losing_the_exclusive_create_race_reads_as_held() {
        /// StdVfs, except every exclusive create loses: models a peer
        /// whose claim lands between our inspect and our create.
        struct AlwaysBeaten;
        impl Vfs for AlwaysBeaten {
            fn read(&self, p: &Path) -> std::io::Result<Vec<u8>> {
                StdVfs.read(p)
            }
            fn write_all(&self, p: &Path, b: &[u8]) -> std::io::Result<()> {
                StdVfs.write_all(p, b)
            }
            fn append(&self, p: &Path, b: &[u8]) -> std::io::Result<()> {
                StdVfs.append(p, b)
            }
            fn fsync_file(&self, p: &Path) -> std::io::Result<()> {
                StdVfs.fsync_file(p)
            }
            fn fsync_dir(&self, p: &Path) -> std::io::Result<()> {
                StdVfs.fsync_dir(p)
            }
            fn rename(&self, a: &Path, b: &Path) -> std::io::Result<()> {
                StdVfs.rename(a, b)
            }
            fn create_new(&self, p: &Path, _b: &[u8]) -> std::io::Result<bool> {
                // The peer's lease is what we then re-inspect.
                StdVfs.write_all(
                    p,
                    render_lease(&LeaseState {
                        shard: 0,
                        token: 9,
                        owner: "peer".to_string(),
                        acquired_ns: 0,
                        expires_ns: u64::MAX,
                        released: false,
                    })
                    .as_bytes(),
                )?;
                Ok(false)
            }
            fn create_dir_all(&self, p: &Path) -> std::io::Result<()> {
                StdVfs.create_dir_all(p)
            }
            fn remove_file(&self, p: &Path) -> std::io::Result<()> {
                StdVfs.remove_file(p)
            }
            fn set_len(&self, p: &Path, n: u64) -> std::io::Result<()> {
                StdVfs.set_len(p, n)
            }
            fn exists(&self, p: &Path) -> bool {
                StdVfs.exists(p)
            }
            fn is_dir(&self, p: &Path) -> bool {
                StdVfs.is_dir(p)
            }
            fn read_dir(&self, p: &Path) -> std::io::Result<Vec<PathBuf>> {
                StdVfs.read_dir(p)
            }
        }

        let root = tmpdir("race");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&AlwaysBeaten, &clock, &root, 1_000);
        let err = m.acquire(0, "w0").unwrap_err();
        let LeaseError::Held { shard, owner, .. } = err else {
            panic!("lost race must read as Held, got {err}");
        };
        assert_eq!((shard, owner.as_str()), (0, "peer"));
        // The peer's lease file is untouched by the loser.
        let on_disk = parse_lease(&std::fs::read(m.lease_path(0)).unwrap()).unwrap();
        assert_eq!((on_disk.owner.as_str(), on_disk.token), ("peer", 9));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lease_file_round_trips_bytes() {
        let state = LeaseState {
            shard: 5,
            token: 42,
            owner: "worker with spaces".to_string(),
            acquired_ns: 123,
            expires_ns: 456,
            released: false,
        };
        let back = parse_lease(render_lease(&state).as_bytes()).unwrap();
        assert_eq!(back, state);
    }
}
