//! Quarantine for corrupt entries.
//!
//! A dataset entry that fails validation is *evidence* — of a torn write,
//! bad disk, or a bug in the writer — so it is moved aside, not deleted:
//! the directory is renamed into `quarantine/` under the dataset root and
//! a `REASON.txt` (written with the atomic protocol) records why. The
//! rebuild then starts from an empty slot, and a post-mortem still has
//! the corpse.

use crate::atomic::write_atomic;
use crate::error::StoreError;
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};

/// Directory name under the dataset root holding quarantined entries.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Moves `entry_dir` into `root/quarantine/` and records `reason`.
///
/// The quarantine slot is named after the entry's path relative to the
/// root (`S/3ckz` → `S-3ckz`), with a numeric suffix if that entry has
/// been quarantined before. Returns the quarantine directory.
pub fn quarantine_entry(
    vfs: &dyn Vfs,
    root: &Path,
    entry_dir: &Path,
    reason: &str,
) -> Result<PathBuf, StoreError> {
    let qroot = root.join(QUARANTINE_DIR);
    vfs.create_dir_all(&qroot)?;
    let base = entry_dir
        .strip_prefix(root)
        .unwrap_or(entry_dir)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("-");
    let mut slot = qroot.join(&base);
    let mut n = 1;
    while vfs.exists(&slot) {
        n += 1;
        slot = qroot.join(format!("{base}-{n}"));
    }
    vfs.rename(entry_dir, &slot)?;
    vfs.fsync_dir(root)?;
    write_atomic(vfs, &slot.join("REASON.txt"), reason.as_bytes())?;
    qdb_telemetry::global().counter("store.quarantines").inc();
    Ok(slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qdb-quar-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quarantine_moves_the_entry_and_writes_a_reason() {
        let root = tmpdir("move");
        let entry = root.join("S").join("3ckz");
        StdVfs.create_dir_all(&entry).unwrap();
        StdVfs
            .write_all(&entry.join("metadata.json"), b"{ torn")
            .unwrap();

        let slot = quarantine_entry(&StdVfs, &root, &entry, "checksum mismatch").unwrap();
        assert!(!entry.exists(), "original slot must be empty for rebuild");
        assert!(slot.ends_with("quarantine/S-3ckz"));
        assert_eq!(
            StdVfs.read(&slot.join("metadata.json")).unwrap(),
            b"{ torn",
            "the corpse is preserved byte-for-byte"
        );
        assert_eq!(
            StdVfs.read(&slot.join("REASON.txt")).unwrap(),
            b"checksum mismatch"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn repeated_quarantines_get_distinct_slots() {
        let root = tmpdir("repeat");
        for i in 0..3 {
            let entry = root.join("S").join("3ckz");
            StdVfs.create_dir_all(&entry).unwrap();
            StdVfs
                .write_all(&entry.join("f"), format!("gen {i}").as_bytes())
                .unwrap();
            quarantine_entry(&StdVfs, &root, &entry, &format!("round {i}")).unwrap();
        }
        let qroot = root.join(QUARANTINE_DIR);
        let mut slots = StdVfs.read_dir(&qroot).unwrap();
        slots.sort();
        assert_eq!(slots.len(), 3);
        assert_eq!(StdVfs.read(&slots[0].join("f")).unwrap(), b"gen 0");
        assert_eq!(StdVfs.read(&slots[2].join("f")).unwrap(), b"gen 2");
        let _ = std::fs::remove_dir_all(&root);
    }
}
