//! # qdb-store
//!
//! Crash-consistent artifact store for the QDockBank dataset pipeline.
//! Zero external dependencies; everything a durable checkpoint layer
//! needs is in-crate:
//!
//! * [`checksum`] — CRC32C (Castagnoli), const-table, no deps;
//! * [`vfs`] — the filesystem seam: [`StdVfs`] in production,
//!   [`CrashVfs`] for the deterministic crash-point sweep harness;
//! * [`atomic`] — the write protocol (tmp → fsync → rename → fsync dir)
//!   plus the per-entry `CHECKSUMS` sidecar that commits an entry;
//! * [`journal`] — append-only self-checksummed line journal whose
//!   recovery truncates to the longest valid prefix;
//! * [`quarantine`] — corrupt entries are moved aside with a reason
//!   file, never deleted;
//! * [`cache`] — content-addressed slot directories with
//!   integrity-checked lookup (the service layer's result cache);
//! * [`lease`] — durable shard leases with monotone fencing tokens and
//!   heartbeat deadlines, the coordination layer for multi-process
//!   sharded builds.
//!
//! The invariant the whole crate exists for: **at every filesystem-
//! operation boundary, a reader either sees no artifact or a complete,
//! checksum-valid one** — a crash can cost work, never integrity.
//!
//! Telemetry: `store.writes`, `store.bytes`, `store.fsyncs`,
//! `store.renames`, `store.checksum_failures`, `store.recoveries`,
//! `store.quarantines`, `store.lease.*` counters and the
//! `store.write_us` histogram, all on the global [`qdb_telemetry`]
//! registry.

pub mod atomic;
pub mod cache;
pub mod checksum;
pub mod error;
pub mod journal;
pub mod lease;
pub mod quarantine;
pub mod telemetry_journal;
pub mod vfs;

pub use atomic::{
    read_sidecar, sweep_tmp_files, verify_dir, write_atomic, EntryWriter, SIDECAR, TMP_SUFFIX,
};
pub use cache::{is_content_key, ContentCache};
pub use checksum::crc32c;
pub use error::StoreError;
pub use journal::{Journal, Replay};
pub use lease::{
    Lease, LeaseError, LeaseManager, LeaseState, LeaseSweep, LeaseSweepEntry, LeaseView, LEASE_DIR,
};
pub use quarantine::{quarantine_entry, QUARANTINE_DIR};
pub use telemetry_journal::{
    fleet_telemetry_path, merge_worker_deltas, read_fleet_snapshot, read_worker_deltas,
    sanitize_worker_id, telemetry_dir, worker_journal_path, worker_trace_path,
    write_fleet_snapshot, WorkerFlusher, FLEET_TELEMETRY_FILE, TELEMETRY_DIR,
    TELEMETRY_JOURNAL_SUFFIX,
};
pub use vfs::{CrashVfs, StdVfs, Vfs};
