//! Property tests for the artifact store: corruption is always detected,
//! journal recovery always lands on a valid record prefix.

use proptest::prelude::*;
use qdb_store::{verify_dir, EntryWriter, Journal, StdVfs, Vfs, SIDECAR};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qdb-store-props-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Arbitrary bytes, 1..`max` long.
fn bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 1..max)
}

/// One journal payload: a lowercase line (journal records are one line).
fn payload(min: usize, max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, min..max)
        .prop_map(|v| String::from_utf8(v).expect("ascii lowercase"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte flip in any committed file — payloads or the
    /// sidecar itself — fails verification.
    #[test]
    fn prop_single_byte_flip_is_detected(
        payload_a in bytes(200),
        payload_b in bytes(200),
        file_sel in 0usize..3,
        flip_pos in any::<u64>(),
        flip_mask in 1u8..=255,
    ) {
        let dir = tmpdir("flip");
        let mut w = EntryWriter::begin(&StdVfs, &dir).unwrap();
        w.put("a.bin", &payload_a).unwrap();
        w.put("b.bin", &payload_b).unwrap();
        w.commit().unwrap();
        prop_assert!(verify_dir(&StdVfs, &dir, &["a.bin", "b.bin"]).is_ok());

        let target = dir.join(["a.bin", "b.bin", SIDECAR][file_sel]);
        let mut bytes = StdVfs.read(&target).unwrap();
        let idx = (flip_pos % bytes.len() as u64) as usize;
        bytes[idx] ^= flip_mask;
        StdVfs.write_all(&target, &bytes).unwrap();

        prop_assert!(
            verify_dir(&StdVfs, &dir, &["a.bin", "b.bin"]).is_err(),
            "flip of byte {idx} in {:?} went undetected", target.file_name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating a journal at an arbitrary byte recovers exactly the
    /// records whose lines survived whole, and repair leaves a journal
    /// that replays identically and accepts new appends.
    #[test]
    fn prop_journal_truncation_recovers_longest_prefix(
        payloads in proptest::collection::vec(payload(0, 60), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmpdir("cut");
        let path = dir.join("manifest.journal");
        let j = Journal::open(&StdVfs, path.clone());
        let mut line_ends = Vec::new();
        for p in &payloads {
            j.append(p).unwrap();
            line_ends.push(StdVfs.read(&path).unwrap().len());
        }
        let total = *line_ends.last().unwrap();
        let cut = (cut_frac * total as f64) as u64;
        StdVfs.set_len(&path, cut).unwrap();
        let expected: Vec<String> = payloads
            .iter()
            .zip(&line_ends)
            .take_while(|(_, end)| **end as u64 <= cut)
            .map(|(p, _)| p.clone())
            .collect();

        let replay = j.replay(true).unwrap();
        prop_assert_eq!(&replay.records, &expected);

        // Repair converged: a second replay is clean and identical.
        let again = j.replay(false).unwrap();
        prop_assert!(!again.recovered());
        prop_assert_eq!(&again.records, &expected);

        // The repaired journal extends normally.
        j.append("after-recovery").unwrap();
        let last = j.replay(false).unwrap().records.pop();
        prop_assert_eq!(last.as_deref(), Some("after-recovery"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any byte of a journal never yields records that were not
    /// written, and always preserves a prefix of what was.
    #[test]
    fn prop_journal_corruption_yields_a_true_prefix(
        payloads in proptest::collection::vec(payload(1, 30), 1..6),
        flip_pos in any::<u64>(),
        flip_mask in 1u8..=255,
    ) {
        let dir = tmpdir("corrupt");
        let path = dir.join("manifest.journal");
        let j = Journal::open(&StdVfs, path.clone());
        for p in &payloads {
            j.append(p).unwrap();
        }
        let mut bytes = StdVfs.read(&path).unwrap();
        let idx = (flip_pos % bytes.len() as u64) as usize;
        bytes[idx] ^= flip_mask;
        StdVfs.write_all(&path, &bytes).unwrap();

        let replay = j.replay(false).unwrap();
        prop_assert!(replay.records.len() <= payloads.len());
        for (got, want) in replay.records.iter().zip(&payloads) {
            prop_assert_eq!(got, want, "recovered record differs from what was written");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
