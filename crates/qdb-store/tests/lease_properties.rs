//! Property tests for the lease state machine: under arbitrary schedules
//! of acquire/renew/release/expiry interleaved across several workers on
//! one virtual clock, the safety invariants hold —
//!
//! 1. at most one lease passes the fencing check at any virtual time,
//! 2. fencing tokens are strictly monotone across acquisitions,
//! 3. stealing an expired lease always succeeds.

use proptest::prelude::*;
use qdb_store::{Lease, LeaseError, LeaseManager, LeaseView, StdVfs};
use qdb_telemetry::{Clock, ManualClock};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qdb-lease-props-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const TTL_MS: u64 = 1_000;
const WORKERS: usize = 3;

/// One step of a schedule: which worker acts, what it tries, and how far
/// virtual time advances first.
#[derive(Clone, Debug)]
struct Step {
    worker: usize,
    /// 0 = acquire, 1 = renew, 2 = release, 3 = no-op (time only).
    action: u8,
    advance_ms: u64,
}

fn steps(max: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0usize..WORKERS, 0u8..4, 0u64..2_500).prop_map(|(worker, action, advance_ms)| Step {
            worker,
            action,
            advance_ms,
        }),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Run an arbitrary schedule and check every safety invariant after
    /// every step.
    #[test]
    fn prop_lease_state_machine_invariants(schedule in steps(40)) {
        let root = tmpdir("sm");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, TTL_MS);
        // Each simulated worker's view of the lease it thinks it holds.
        let mut held: Vec<Option<Lease>> = vec![None; WORKERS];
        let mut last_token = 0u64;

        for (i, step) in schedule.iter().enumerate() {
            clock.advance_ms(step.advance_ms);
            let owner = format!("w{}", step.worker);
            match step.action {
                0 => {
                    let view_before = m.inspect(0);
                    match m.acquire(0, &owner) {
                        Ok(lease) => {
                            // Invariant 2: strictly monotone tokens.
                            prop_assert!(
                                lease.token > last_token,
                                "step {i}: token {} not above {last_token}",
                                lease.token
                            );
                            last_token = lease.token;
                            // Acquisition is only legal against a
                            // claimable view or the worker's own lease.
                            match &view_before {
                                LeaseView::Held(s) => prop_assert_eq!(&s.owner, &owner),
                                _ => prop_assert!(view_before.claimable()),
                            }
                            held[step.worker] = Some(lease);
                        }
                        Err(LeaseError::Held { .. }) => {
                            // Invariant 3: a live-holder rejection is
                            // only possible while the lease is truly
                            // unexpired — steal-after-expiry never
                            // bounces.
                            let LeaseView::Held(s) = view_before else {
                                prop_assert!(false, "step {i}: Held error against claimable view");
                                unreachable!();
                            };
                            prop_assert!(s.owner != owner);
                            prop_assert!(clock.now_ns() <= s.expires_ns);
                        }
                        Err(e) => {
                            prop_assert!(false, "step {i}: unexpected acquire error {e}");
                            unreachable!();
                        }
                    }
                }
                1 => {
                    if let Some(lease) = held[step.worker].as_mut() {
                        // Renew never changes the token, whether it
                        // succeeds (still holder) or fences (stolen).
                        let before = lease.token;
                        let _ = m.renew(lease);
                        prop_assert_eq!(lease.token, before);
                    }
                }
                2 => {
                    if let Some(lease) = held[step.worker].take() {
                        // Release either succeeds or was already fenced;
                        // both leave the worker with nothing.
                        let _ = m.release(&lease);
                    }
                }
                _ => {}
            }

            // Invariant 1: at most one in-memory lease passes the
            // fencing check at this instant.
            let valid: Vec<usize> = (0..WORKERS)
                .filter(|&w| {
                    held[w]
                        .as_ref()
                        .is_some_and(|l| m.check(l).is_ok())
                })
                .collect();
            prop_assert!(
                valid.len() <= 1,
                "step {i}: workers {valid:?} all hold check-valid leases"
            );
            // And that one valid lease, if any, matches the on-disk view.
            if let Some(&w) = valid.first() {
                let lease = held[w].as_ref().unwrap();
                match m.inspect(0) {
                    LeaseView::Held(s) | LeaseView::Expired(s) => {
                        prop_assert_eq!(s.token, lease.token);
                        prop_assert_eq!(&s.owner, &lease.owner);
                    }
                    other => {
                        prop_assert!(false, "step {i}: check-valid lease but view {other:?}");
                        unreachable!();
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Whatever schedule ran before, once the current lease's deadline
    /// has passed, any worker's steal succeeds — expiry always unblocks.
    #[test]
    fn prop_steal_after_expiry_always_succeeds(
        schedule in steps(25),
        thief in 0usize..WORKERS,
    ) {
        let root = tmpdir("steal");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, TTL_MS);
        for step in &schedule {
            clock.advance_ms(step.advance_ms);
            let owner = format!("w{}", step.worker);
            let _ = match step.action {
                0 => m.acquire(0, &owner).map(|_| ()),
                _ => Ok(()),
            };
        }
        // Push time past any deadline the schedule could have written.
        clock.advance_ms(TTL_MS + 1);
        prop_assert!(m.inspect(0).claimable(), "expired lease must be claimable");
        let owner = format!("w{thief}");
        let lease = m.acquire(0, &owner);
        prop_assert!(lease.is_ok(), "steal after expiry failed: {:?}", lease.err().map(|e| e.to_string()));
        prop_assert!(m.check(&lease.unwrap()).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Tokens observed on disk across any schedule form a strictly
    /// increasing sequence — no reuse, no rollback, even through
    /// release/re-acquire and steal cycles.
    #[test]
    fn prop_on_disk_tokens_never_regress(schedule in steps(40)) {
        let root = tmpdir("mono");
        let clock = ManualClock::new();
        let m = LeaseManager::new(&StdVfs, &clock, &root, TTL_MS);
        let mut last_seen = 0u64;
        for (i, step) in schedule.iter().enumerate() {
            clock.advance_ms(step.advance_ms);
            let owner = format!("w{}", step.worker);
            if step.action == 0 {
                let _ = m.acquire(0, &owner);
            }
            match m.inspect(0) {
                LeaseView::Held(s) | LeaseView::Expired(s) | LeaseView::Released(s) => {
                    prop_assert!(
                        s.token >= last_seen,
                        "step {i}: on-disk token regressed {last_seen} -> {}",
                        s.token
                    );
                    last_seen = s.token;
                }
                LeaseView::Free => {}
                LeaseView::Corrupt { .. } => {
                    prop_assert!(false, "step {i}: lease corrupt without injected corruption");
                    unreachable!();
                }
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
