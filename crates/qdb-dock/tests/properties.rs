//! Property-based tests for the docking engine's scoring and clustering
//! invariants.

use proptest::prelude::*;
use qdb_dock::cluster::{cluster_poses, rmsd_lower_bound, rmsd_upper_bound};
use qdb_dock::pose::Pose;
use qdb_dock::scoring::{affinity, pair_energy, pair_terms, CUTOFF};
use qdb_dock::types::TypedAtom;
use qdb_mol::geometry::Vec3;
use qdb_mol::ligand::generate_ligand;

fn arb_atom() -> impl Strategy<Value = TypedAtom> {
    (
        (-8.0f64..8.0, -8.0f64..8.0, -8.0f64..8.0),
        prop_oneof![Just(1.7f64), Just(1.8), Just(1.9), Just(2.0)],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |((x, y, z), radius, hydrophobic, donor, acceptor)| TypedAtom {
                pos: Vec3::new(x, y, z),
                radius,
                hydrophobic,
                donor,
                acceptor,
            },
        )
}

fn arb_cloud(n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    proptest::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        n..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pair scoring is symmetric in its arguments.
    #[test]
    fn pair_energy_symmetric(a in arb_atom(), b in arb_atom()) {
        prop_assert_eq!(pair_energy(&a, &b), pair_energy(&b, &a));
    }

    /// All raw terms are non-negative and vanish beyond the cutoff.
    #[test]
    fn terms_nonnegative_and_cut(a in arb_atom(), b in arb_atom()) {
        let t = pair_terms(&a, &b);
        prop_assert!(t.gauss1 >= 0.0 && t.gauss1 <= 1.0);
        prop_assert!(t.gauss2 >= 0.0 && t.gauss2 <= 1.0);
        prop_assert!(t.repulsion >= 0.0);
        prop_assert!((0.0..=1.0).contains(&t.hydrophobic));
        prop_assert!((0.0..=1.0).contains(&t.hbond));
        if a.pos.distance(b.pos) > CUTOFF {
            prop_assert_eq!(t, Default::default());
        }
    }

    /// The rotor penalty shrinks the magnitude but never flips the sign.
    #[test]
    fn affinity_penalty_monotone(e in -12.0f64..0.0, n1 in 0usize..10, n2 in 0usize..10) {
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        let a_lo = affinity(e, lo);
        let a_hi = affinity(e, hi);
        prop_assert!(a_lo <= a_hi + 1e-12, "more rotors must weaken binding");
        prop_assert!(a_hi <= 0.0);
    }

    /// Pose-RMSD lower bound never exceeds the upper bound, and both are
    /// zero exactly on identical poses.
    #[test]
    fn rmsd_bounds_ordering(a in arb_cloud(6), b in arb_cloud(6)) {
        let lb = rmsd_lower_bound(&a, &b);
        let ub = rmsd_upper_bound(&a, &b);
        prop_assert!(lb <= ub + 1e-9);
        prop_assert!(rmsd_upper_bound(&a, &a) < 1e-12);
        prop_assert!(rmsd_lower_bound(&a, &a) < 1e-12);
    }

    /// Clustering output is sorted, deduplicated (pairwise u.b. RMSD ≥
    /// threshold) and bounded in size.
    #[test]
    fn clustering_invariants(
        shifts in proptest::collection::vec(0.0f64..30.0, 1..20),
        max_poses in 1usize..8,
    ) {
        let candidates: Vec<(Vec<Vec3>, f64)> = shifts
            .iter()
            .map(|&s| {
                let coords: Vec<Vec3> =
                    (0..5).map(|i| Vec3::new(i as f64 * 1.5 + s, 0.0, 0.0)).collect();
                (coords, -s)
            })
            .collect();
        let out = cluster_poses(candidates, 1.0, max_poses);
        prop_assert!(out.len() <= max_poses);
        prop_assert!(!out.is_empty());
        for w in out.windows(2) {
            prop_assert!(w[0].affinity <= w[1].affinity);
        }
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                prop_assert!(
                    rmsd_upper_bound(&out[i].coords, &out[j].coords) >= 1.0 - 1e-9,
                    "kept poses too similar"
                );
            }
        }
    }

    /// Pose application is deterministic and rigid DOFs preserve internal
    /// geometry for any orientation.
    #[test]
    fn pose_rigidity(seed in any::<u64>(), dof in 0usize..6, delta in -2.0f64..2.0) {
        let lig = generate_ligand(seed, 12);
        let base = Pose::at(Vec3::new(1.0, -2.0, 0.5), lig.num_rotatable());
        let moved = base.nudge(dof, delta);
        let a = moved.apply(&lig);
        let b = moved.apply(&lig);
        prop_assert_eq!(&a, &b, "pose application must be deterministic");
        // Rigid DOFs (0-5) keep all pairwise distances.
        let orig = base.apply(&lig);
        for i in 0..orig.len() {
            for j in (i + 1)..orig.len() {
                prop_assert!(
                    (orig[i].distance(orig[j]) - a[i].distance(a[j])).abs() < 1e-9
                );
            }
        }
    }
}
