//! Property-based tests for the docking engine's scoring and clustering
//! invariants, plus the backend dispatcher's ladder semantics.

use proptest::prelude::*;
use qdb_dock::backend::{BackendError, DockBackend, DockContext};
use qdb_dock::cluster::{cluster_poses, rmsd_lower_bound, rmsd_upper_bound};
use qdb_dock::dispatch::{DispatchPolicy, Dispatcher};
use qdb_dock::engine::{DockParams, DockRun};
use qdb_dock::pose::Pose;
use qdb_dock::scoring::{affinity, pair_energy, pair_terms, CUTOFF};
use qdb_dock::types::TypedAtom;
use qdb_dock::ScoredPose;
use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
use qdb_mol::geometry::Vec3;
use qdb_mol::ligand::{generate_ligand, Ligand};
use qdb_mol::structure::Structure;
use qdb_telemetry::ManualClock;

fn arb_atom() -> impl Strategy<Value = TypedAtom> {
    (
        (-8.0f64..8.0, -8.0f64..8.0, -8.0f64..8.0),
        prop_oneof![Just(1.7f64), Just(1.8), Just(1.9), Just(2.0)],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |((x, y, z), radius, hydrophobic, donor, acceptor)| TypedAtom {
                pos: Vec3::new(x, y, z),
                radius,
                hydrophobic,
                donor,
                acceptor,
            },
        )
}

fn arb_cloud(n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    proptest::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        n..=n,
    )
}

/// Stable names for up to five scripted ladder rungs.
const RUNG_NAMES: [&str; 5] = ["rung0", "rung1", "rung2", "rung3", "rung4"];

/// A scripted ladder rung: advances the manual clock to simulate work,
/// then fails with the scripted error or returns a one-pose run.
struct ScriptedBackend<'c> {
    name: &'static str,
    clock: &'c ManualClock,
    advance_ms: u64,
    fail: Option<BackendError>,
}

impl DockBackend for ScriptedBackend<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn probe(
        &self,
        _receptor: &Structure,
        _ligand: &Ligand,
        _params: &DockParams,
    ) -> Result<(), BackendError> {
        Ok(())
    }

    fn dock(
        &self,
        _receptor: &Structure,
        _ligand: &Ligand,
        _params: &DockParams,
        seed: u64,
        _ctx: &DockContext<'_>,
    ) -> Result<DockRun, BackendError> {
        self.clock.advance_ms(self.advance_ms);
        if let Some(err) = &self.fail {
            return Err(err.clone());
        }
        Ok(DockRun {
            seed,
            poses: vec![ScoredPose {
                coords: vec![Vec3::ZERO],
                affinity: -4.0,
                rmsd_lb: 0.0,
                rmsd_ub: 0.0,
            }],
        })
    }
}

/// `None` = the rung succeeds (2-in-5 odds); `Some(err)` = it fails
/// with that error.
fn arb_rung_failure() -> impl Strategy<Value = Option<BackendError>> {
    (0u8..5).prop_map(|k| match k {
        0 | 1 => None,
        2 => Some(BackendError::Transient {
            message: "injected".to_string(),
        }),
        3 => Some(BackendError::Internal {
            message: "solver bug".to_string(),
        }),
        _ => Some(BackendError::NoPoses),
    })
}

/// A minimal receptor/ligand pair for dispatcher tests (the scripted
/// backends never actually look at it).
fn tiny_problem() -> (Structure, Ligand) {
    let trace = vec![
        Vec3::ZERO,
        Vec3::new(3.8, 0.0, 0.0),
        Vec3::new(3.8, 3.8, 0.0),
    ];
    let specs: Vec<ResidueSpec> = "LKD"
        .chars()
        .enumerate()
        .map(|(i, c)| ResidueSpec {
            name: "UNK".into(),
            seq_num: i as i32 + 1,
            side_chain: classify_side_chain(c),
        })
        .collect();
    let mut s = build_peptide(&trace, &specs);
    s.center();
    (s, generate_ligand(1, 8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pair scoring is symmetric in its arguments.
    #[test]
    fn pair_energy_symmetric(a in arb_atom(), b in arb_atom()) {
        prop_assert_eq!(pair_energy(&a, &b), pair_energy(&b, &a));
    }

    /// All raw terms are non-negative and vanish beyond the cutoff.
    #[test]
    fn terms_nonnegative_and_cut(a in arb_atom(), b in arb_atom()) {
        let t = pair_terms(&a, &b);
        prop_assert!(t.gauss1 >= 0.0 && t.gauss1 <= 1.0);
        prop_assert!(t.gauss2 >= 0.0 && t.gauss2 <= 1.0);
        prop_assert!(t.repulsion >= 0.0);
        prop_assert!((0.0..=1.0).contains(&t.hydrophobic));
        prop_assert!((0.0..=1.0).contains(&t.hbond));
        if a.pos.distance(b.pos) > CUTOFF {
            prop_assert_eq!(t, Default::default());
        }
    }

    /// The rotor penalty shrinks the magnitude but never flips the sign.
    #[test]
    fn affinity_penalty_monotone(e in -12.0f64..0.0, n1 in 0usize..10, n2 in 0usize..10) {
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        let a_lo = affinity(e, lo);
        let a_hi = affinity(e, hi);
        prop_assert!(a_lo <= a_hi + 1e-12, "more rotors must weaken binding");
        prop_assert!(a_hi <= 0.0);
    }

    /// Pose-RMSD lower bound never exceeds the upper bound, and both are
    /// zero exactly on identical poses.
    #[test]
    fn rmsd_bounds_ordering(a in arb_cloud(6), b in arb_cloud(6)) {
        let lb = rmsd_lower_bound(&a, &b);
        let ub = rmsd_upper_bound(&a, &b);
        prop_assert!(lb <= ub + 1e-9);
        prop_assert!(rmsd_upper_bound(&a, &a) < 1e-12);
        prop_assert!(rmsd_lower_bound(&a, &a) < 1e-12);
    }

    /// Clustering output is sorted, deduplicated (pairwise u.b. RMSD ≥
    /// threshold) and bounded in size.
    #[test]
    fn clustering_invariants(
        shifts in proptest::collection::vec(0.0f64..30.0, 1..20),
        max_poses in 1usize..8,
    ) {
        let candidates: Vec<(Vec<Vec3>, f64)> = shifts
            .iter()
            .map(|&s| {
                let coords: Vec<Vec3> =
                    (0..5).map(|i| Vec3::new(i as f64 * 1.5 + s, 0.0, 0.0)).collect();
                (coords, -s)
            })
            .collect();
        let out = cluster_poses(candidates, 1.0, max_poses);
        prop_assert!(out.len() <= max_poses);
        prop_assert!(!out.is_empty());
        for w in out.windows(2) {
            prop_assert!(w[0].affinity <= w[1].affinity);
        }
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                prop_assert!(
                    rmsd_upper_bound(&out[i].coords, &out[j].coords) >= 1.0 - 1e-9,
                    "kept poses too similar"
                );
            }
        }
    }

    /// Clustering never panics on non-finite scores and only finite
    /// affinities survive, in sorted order — the NaN-safety satellite.
    #[test]
    fn clustering_survives_nonfinite_scores(
        scores in proptest::collection::vec(
            (0u8..7, -10.0f64..0.0).prop_map(|(k, v)| match k {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => v,
            }),
            1..15,
        ),
    ) {
        let candidates: Vec<(Vec<Vec3>, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let coords: Vec<Vec3> =
                    (0..4).map(|j| Vec3::new(j as f64 + i as f64 * 5.0, 0.0, 0.0)).collect();
                (coords, s)
            })
            .collect();
        let finite = scores.iter().filter(|s| s.is_finite()).count();
        let out = cluster_poses(candidates, 1.0, 20);
        prop_assert_eq!(out.len(), finite, "exactly the finite poses survive");
        prop_assert!(out.iter().all(|p| p.affinity.is_finite()));
        for w in out.windows(2) {
            prop_assert!(w[0].affinity <= w[1].affinity);
        }
    }

    /// Ladder order: the dispatcher returns the first succeeding rung,
    /// counts exactly the failed rungs before it as fallbacks, and
    /// preserves each failure's kind and transient classification in the
    /// attempt history.
    #[test]
    fn dispatcher_returns_the_first_succeeding_rung(
        script in proptest::collection::vec(arb_rung_failure(), 1..5),
    ) {
        let clock = ManualClock::new();
        let rungs: Vec<ScriptedBackend<'_>> = script
            .iter()
            .enumerate()
            .map(|(i, fail)| ScriptedBackend {
                name: RUNG_NAMES[i],
                clock: &clock,
                advance_ms: 1,
                fail: fail.clone(),
            })
            .collect();
        let ladder: Vec<&dyn DockBackend> = rungs.iter().map(|r| r as &dyn DockBackend).collect();
        let d = Dispatcher::new(ladder, &clock, DispatchPolicy::default());
        let (rec, lig) = tiny_problem();
        let result = d.dock(&rec, &lig, &DockParams::fast(), 1);
        match script.iter().position(|f| f.is_none()) {
            Some(first_ok) => {
                let out = result.expect("a succeeding rung exists");
                prop_assert_eq!(out.backend, RUNG_NAMES[first_ok]);
                prop_assert_eq!(out.fallbacks, first_ok as u64);
                prop_assert_eq!(out.attempts.len(), first_ok + 1);
                for (attempt, fail) in out.attempts.iter().zip(script.iter()) {
                    prop_assert_eq!(attempt.error_kind, fail.as_ref().map(|e| e.kind()));
                    prop_assert_eq!(
                        attempt.transient,
                        fail.as_ref().map(|e| e.is_transient()).unwrap_or(false)
                    );
                }
            }
            None => {
                let err = result.expect_err("every rung fails");
                prop_assert_eq!(err.attempts.len(), script.len());
                prop_assert_eq!(&err.last, script.last().unwrap().as_ref().unwrap());
                for (attempt, fail) in err.attempts.iter().zip(script.iter()) {
                    prop_assert_eq!(attempt.error_kind, fail.as_ref().map(|e| e.kind()));
                }
            }
        }
    }

    /// Deadlines: a non-final rung that overruns its budget is abandoned
    /// (recorded as deadline-exceeded) even when it returns a run; the
    /// final rung's late success is accepted. Measured entirely on the
    /// ManualClock seam.
    #[test]
    fn dispatcher_respects_per_backend_deadlines(
        durations in proptest::collection::vec(1u64..100, 1..4),
        deadline in 1u64..100,
    ) {
        let clock = ManualClock::new();
        let rungs: Vec<ScriptedBackend<'_>> = durations
            .iter()
            .enumerate()
            .map(|(i, &ms)| ScriptedBackend {
                name: RUNG_NAMES[i],
                clock: &clock,
                advance_ms: ms,
                fail: None,
            })
            .collect();
        let ladder: Vec<&dyn DockBackend> = rungs.iter().map(|r| r as &dyn DockBackend).collect();
        let policy = DispatchPolicy { per_backend_deadline_ms: Some(deadline) };
        let d = Dispatcher::new(ladder, &clock, policy);
        let (rec, lig) = tiny_problem();
        let out = d
            .dock(&rec, &lig, &DockParams::fast(), 1)
            .expect("every rung eventually succeeds");
        // Winner = first rung within budget, or the last rung.
        let winner = durations
            .iter()
            .position(|&ms| ms < deadline)
            .unwrap_or(durations.len() - 1);
        prop_assert_eq!(out.backend, RUNG_NAMES[winner]);
        prop_assert_eq!(out.fallbacks, winner as u64);
        for attempt in &out.attempts[..winner] {
            prop_assert_eq!(attempt.error_kind, Some("deadline-exceeded"));
        }
    }

    /// Pose application is deterministic and rigid DOFs preserve internal
    /// geometry for any orientation.
    #[test]
    fn pose_rigidity(seed in any::<u64>(), dof in 0usize..6, delta in -2.0f64..2.0) {
        let lig = generate_ligand(seed, 12);
        let base = Pose::at(Vec3::new(1.0, -2.0, 0.5), lig.num_rotatable());
        let moved = base.nudge(dof, delta);
        let a = moved.apply(&lig);
        let b = moved.apply(&lig);
        prop_assert_eq!(&a, &b, "pose application must be deterministic");
        // Rigid DOFs (0-5) keep all pairwise distances.
        let orig = base.apply(&lig);
        for i in 0..orig.len() {
            for j in (i + 1)..orig.len() {
                prop_assert!(
                    (orig[i].distance(orig[j]) - a[i].distance(a[j])).abs() < 1e-9
                );
            }
        }
    }
}
