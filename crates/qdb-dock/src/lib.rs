//! # qdb-dock
//!
//! A from-scratch AutoDock-Vina-style docking engine (the paper's §4.3.3
//! docking substrate): Vina atom typing, the published five-term scoring
//! function, precomputed receptor grids with trilinear interpolation,
//! Monte-Carlo search with compass-search local refinement, pose
//! clustering, and the paper's 20-seed replicated protocol with per-pose
//! affinity and lb/ub RMSD reporting.
//!
//! The engine sits behind the pluggable [`backend`] seam: [`DockBackend`]
//! is the contract every docking engine implements (this crate's Vina
//! port, the QUBO pose generator in `qdb-qubo`), and [`dispatch`] stacks
//! backends into the `auto` fallback ladder with per-backend deadlines.

pub mod backend;
pub mod cluster;
pub mod dispatch;
pub mod engine;
pub mod grid;
pub mod local;
pub mod pdbqt;
pub mod pose;
pub mod scoring;
pub mod search;
pub mod types;

pub use backend::{BackendError, DockBackend, DockContext, FaultInjectedBackend, VinaBackend};
pub use cluster::{cluster_poses, rmsd_lower_bound, rmsd_upper_bound, ScoredPose};
pub use dispatch::{
    BackendAttempt, BackendChoice, DispatchError, DispatchPolicy, DispatchResult,
    DispatchedReplicates, Dispatcher,
};
pub use engine::{dock, dock_replicates, DockOutcome, DockParams, DockRun};
pub use grid::GridMaps;
pub use pose::Pose;
pub use types::{type_ligand, type_receptor, TypedAtom};
