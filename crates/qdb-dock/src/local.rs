//! Local pose refinement by compass (pattern) search.
//!
//! Vina refines every Monte-Carlo move with a quasi-Newton step; we use a
//! derivative-free compass search over the pose DOFs (translation,
//! rotation, torsions) with a shrinking step, which is robust to the
//! kinked energy terms (ramps, cutoff) and needs no gradient bookkeeping.

use crate::pose::Pose;

/// Refines `pose` against `energy`, returning the improved pose and its
/// energy. `max_evals` bounds objective calls.
pub fn refine<F: FnMut(&Pose) -> f64>(pose: &Pose, mut energy: F, max_evals: usize) -> (Pose, f64) {
    let mut best = pose.clone();
    let mut best_e = energy(&best);
    let mut evals = 1usize;
    // Separate step scales: Å for translation, radians for rotation and
    // torsions.
    let mut trans_step = 0.6;
    let mut angle_step = 0.35;
    let dof = best.dof();

    while evals + 2 * dof <= max_evals && (trans_step > 0.02 || angle_step > 0.02) {
        let mut improved = false;
        for d in 0..dof {
            let step = if d < 3 { trans_step } else { angle_step };
            for sign in [1.0, -1.0] {
                let candidate = best.nudge(d, sign * step);
                let e = energy(&candidate);
                evals += 1;
                if e < best_e - 1e-12 {
                    best = candidate;
                    best_e = e;
                    improved = true;
                    break;
                }
                if evals + 1 > max_evals {
                    return (best, best_e);
                }
            }
        }
        if !improved {
            trans_step *= 0.5;
            angle_step *= 0.5;
        }
    }
    (best, best_e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_mol::geometry::Vec3;

    #[test]
    fn refine_descends_quadratic_bowl() {
        // Energy = squared distance of position to a target point.
        let target = Vec3::new(2.0, -1.0, 0.5);
        let pose = Pose::at(Vec3::ZERO, 0);
        let (refined, e) = refine(&pose, |p| (p.position - target).norm_sq(), 500);
        assert!(e < 0.05, "should approach the target, e = {e}");
        assert!((refined.position - target).norm() < 0.25);
    }

    #[test]
    fn refine_improves_torsions_too() {
        // Energy = (torsion - 0.9)².
        let pose = Pose::at(Vec3::ZERO, 1);
        let (refined, e) = refine(&pose, |p| (p.torsions[0] - 0.9).powi(2), 300);
        assert!(e < 0.01);
        assert!((refined.torsions[0] - 0.9).abs() < 0.1);
    }

    #[test]
    fn refine_respects_budget() {
        let pose = Pose::at(Vec3::ZERO, 2);
        let mut calls = 0usize;
        let _ = refine(
            &pose,
            |p| {
                calls += 1;
                p.position.norm_sq()
            },
            40,
        );
        assert!(calls <= 40, "made {calls} calls");
    }

    #[test]
    fn refine_never_worsens() {
        let pose = Pose::at(Vec3::new(1.0, 1.0, 1.0), 0);
        let start_e = pose.position.norm_sq();
        let (_, e) = refine(&pose, |p| p.position.norm_sq(), 200);
        assert!(e <= start_e);
    }
}
