//! The top-level docking engine (paper §4.3.3 / §6.1.2).
//!
//! `dock` runs one Vina-style docking: precompute receptor grids, run
//! `exhaustiveness` Monte-Carlo chains (rayon-parallel), cluster candidate
//! poses, report the top poses with affinity and lb/ub RMSD. The paper's
//! protocol — 20 independent runs per structure, each returning 10 poses —
//! is [`dock_replicates`].

use crate::cluster::{cluster_poses, ScoredPose};
use crate::grid::{GridMaps, DEFAULT_SPACING};
use crate::scoring::{affinity, intermolecular, intramolecular};
use crate::search::{mc_chain, SearchParams};
use crate::types::{retype_positions, type_ligand, type_receptor, AtomClass, TypedAtom};
use qdb_mol::geometry::Vec3;
use qdb_mol::ligand::Ligand;
use qdb_mol::structure::Structure;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Docking configuration.
#[derive(Clone, Copy, Debug)]
pub struct DockParams {
    /// Search-box center (usually the receptor pocket centroid).
    pub center: Vec3,
    /// Box edge lengths (Å).
    pub box_size: Vec3,
    /// Independent Monte-Carlo chains per run (Vina's `exhaustiveness`).
    pub exhaustiveness: usize,
    /// MC steps per chain.
    pub mc_steps: usize,
    /// Objective evaluations per local refinement.
    pub refine_evals: usize,
    /// Poses reported per run (the paper uses 10).
    pub poses_per_run: usize,
    /// Cluster radius (Å) for pose deduplication.
    pub min_rmsd: f64,
    /// Grid spacing; set `use_grids` false to score directly.
    pub spacing: f64,
    /// Use precomputed grids (Vina behaviour) or direct pairwise sums.
    pub use_grids: bool,
    /// Local-only mode (Vina's `local_only` rescoring protocol): every
    /// Monte-Carlo chain starts from the ligand's *input* pose with a
    /// small seeded perturbation instead of a random placement in the
    /// box. Used to rescore a known (native) binding pose against
    /// alternative receptor conformations.
    pub local_only: bool,
}

impl Default for DockParams {
    fn default() -> Self {
        Self {
            center: Vec3::ZERO,
            box_size: Vec3::new(22.0, 22.0, 22.0),
            exhaustiveness: 8,
            mc_steps: 60,
            refine_evals: 120,
            poses_per_run: 10,
            min_rmsd: 1.0,
            spacing: DEFAULT_SPACING,
            use_grids: true,
            local_only: false,
        }
    }
}

impl DockParams {
    /// Reduced-budget settings for tests.
    pub fn fast() -> Self {
        Self {
            exhaustiveness: 3,
            mc_steps: 20,
            refine_evals: 60,
            ..Default::default()
        }
    }
}

/// One docking run's output.
#[derive(Clone, Debug)]
pub struct DockRun {
    /// Run seed (recorded for reproducibility, as the paper does).
    pub seed: u64,
    /// Ranked poses (best first).
    pub poses: Vec<ScoredPose>,
}

impl DockRun {
    /// Affinity of the best pose.
    pub fn best_affinity(&self) -> f64 {
        self.poses.first().map(|p| p.affinity).unwrap_or(0.0)
    }

    /// Mean affinity over the reported poses.
    pub fn mean_affinity(&self) -> f64 {
        if self.poses.is_empty() {
            return 0.0;
        }
        self.poses.iter().map(|p| p.affinity).sum::<f64>() / self.poses.len() as f64
    }

    /// Mean RMSD lower bound over non-best poses.
    pub fn mean_rmsd_lb(&self) -> f64 {
        mean(self.poses.iter().skip(1).map(|p| p.rmsd_lb))
    }

    /// Mean RMSD upper bound over non-best poses.
    pub fn mean_rmsd_ub(&self) -> f64 {
        mean(self.poses.iter().skip(1).map(|p| p.rmsd_ub))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Replicated docking (the paper's 20-seed protocol).
#[derive(Clone, Debug)]
pub struct DockOutcome {
    /// All runs, in seed order.
    pub runs: Vec<DockRun>,
}

impl DockOutcome {
    /// Grand mean of each run's best affinity — the per-structure score
    /// the paper's figures plot.
    pub fn mean_best_affinity(&self) -> f64 {
        mean(self.runs.iter().map(|r| r.best_affinity()))
    }

    /// Best affinity over all runs.
    pub fn best_affinity(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.best_affinity())
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean pose-RMSD lower bound over all runs (Table 4 column).
    pub fn mean_rmsd_lb(&self) -> f64 {
        mean(self.runs.iter().map(|r| r.mean_rmsd_lb()))
    }

    /// Mean pose-RMSD upper bound over all runs (Table 4 column).
    pub fn mean_rmsd_ub(&self) -> f64 {
        mean(self.runs.iter().map(|r| r.mean_rmsd_ub()))
    }
}

/// Bond-path distances ≥ 4 pairs for the intramolecular term. Public so
/// alternative backends (qdb-qubo) score poses with the identical
/// intramolecular model.
pub fn intra_pairs(ligand: &Ligand) -> Vec<(usize, usize)> {
    let n = ligand.num_atoms();
    // BFS bond-path distances over the tree.
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &ligand.bonds {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut pairs = Vec::new();
    for start in 0..n {
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        for (other, &d) in dist.iter().enumerate().skip(start + 1) {
            if d >= 4 {
                pairs.push((start, other));
            }
        }
    }
    pairs
}

/// Runs one docking with a single seed.
pub fn dock(receptor: &Structure, ligand: &Ligand, params: &DockParams, seed: u64) -> DockRun {
    // Shared atomic counters; the per-evaluation add is negligible next to
    // a pose scoring pass, and rayon chains may share them freely.
    let telemetry = qdb_telemetry::global();
    telemetry.counter("dock.runs").inc();
    telemetry
        .counter("dock.chains")
        .add(params.exhaustiveness as u64);
    let m_energy_evals = telemetry.counter("dock.energy_evals");

    let receptor_atoms = type_receptor(receptor);
    let ligand_template = type_ligand(ligand);
    let pairs = intra_pairs(ligand);
    let n_rot = ligand.num_rotatable();

    let classes: Vec<AtomClass> = ligand_template.iter().map(|a| a.class()).collect();
    let grids = params.use_grids.then(|| {
        GridMaps::build(
            &receptor_atoms,
            &classes,
            params.center,
            params.box_size,
            params.spacing,
        )
    });

    let search = SearchParams {
        center: params.center,
        box_size: params.box_size,
        steps: params.mc_steps,
        refine_evals: params.refine_evals,
        temperature: 1.2,
    };

    // Energy closures share read-only state; chains run in parallel.
    let eval_inter = |atoms: &[TypedAtom]| -> f64 {
        match &grids {
            Some(g) => g.ligand_energy(atoms),
            None => intermolecular(atoms, &receptor_atoms),
        }
    };

    let candidates: Vec<(Vec<Vec3>, f64)> = (0..params.exhaustiveness as u64)
        .into_par_iter()
        .flat_map_iter(|chain| {
            // One span per Monte-Carlo chain, opened on the rayon worker
            // that runs it — with a flight recorder installed these are
            // the per-worker lanes of the dock stage.
            let _chain_span = telemetry.span("dock.chain");
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chain + 1)),
            );
            let energy_of = |pose: &crate::pose::Pose| {
                m_energy_evals.inc();
                let coords = pose.apply(ligand);
                let atoms = retype_positions(&ligand_template, &coords);
                eval_inter(&atoms) + intramolecular(&atoms, &pairs)
            };
            let accepted = if params.local_only {
                crate::search::local_chain(&search, ligand.centroid(), n_rot, energy_of, &mut rng)
            } else {
                mc_chain(&search, n_rot, energy_of, &mut rng)
            };
            accepted.into_iter().map(|(pose, _)| {
                let coords = pose.apply(ligand);
                let atoms = retype_positions(&ligand_template, &coords);
                // Score with the *direct* intermolecular energy so reported
                // affinities are free of interpolation error.
                let e_inter = intermolecular(&atoms, &receptor_atoms);
                (coords, affinity(e_inter, n_rot))
            })
        })
        .collect();

    telemetry
        .counter("dock.poses_generated")
        .add(candidates.len() as u64);
    let poses = cluster_poses(candidates, params.min_rmsd, params.poses_per_run);
    telemetry
        .counter("dock.poses_reported")
        .add(poses.len() as u64);
    DockRun { seed, poses }
}

/// The paper's protocol: `num_runs` independent runs with distinct seeds
/// derived from `base_seed` (each run's seed is recorded).
pub fn dock_replicates(
    receptor: &Structure,
    ligand: &Ligand,
    params: &DockParams,
    base_seed: u64,
    num_runs: usize,
) -> DockOutcome {
    let runs: Vec<DockRun> = (0..num_runs as u64)
        .map(|i| {
            dock(
                receptor,
                ligand,
                params,
                base_seed.wrapping_add(i * 0x1000_0000_0001),
            )
        })
        .collect();
    DockOutcome { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
    use qdb_mol::ligand::generate_ligand;

    fn receptor(seq: &str) -> Structure {
        let s = 3.8 / (3.0f64).sqrt();
        let dirs = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.0, -1.0, -1.0),
            Vec3::new(-1.0, 1.0, -1.0),
        ];
        let mut p = Vec3::ZERO;
        let mut trace = vec![p];
        for i in 0..seq.len() - 1 {
            let d = dirs[i % 3] * if i % 2 == 0 { 1.0 } else { -1.0 };
            p += d * s;
            trace.push(p);
        }
        let specs: Vec<ResidueSpec> = seq
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "UNK".into(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        let mut s = build_peptide(&trace, &specs);
        s.center();
        s
    }

    #[test]
    fn docking_produces_negative_affinities() {
        let rec = receptor("LKDSVI");
        let lig = generate_ligand(42, 14);
        let run = dock(&rec, &lig, &DockParams::fast(), 7);
        assert!(!run.poses.is_empty());
        assert!(
            run.best_affinity() < -1.0,
            "a pocket-sized ligand should bind, got {}",
            run.best_affinity()
        );
        // Poses sorted best-first.
        for w in run.poses.windows(2) {
            assert!(w[0].affinity <= w[1].affinity);
        }
    }

    #[test]
    fn docking_is_seed_reproducible() {
        let rec = receptor("LKDSV");
        let lig = generate_ligand(9, 12);
        let a = dock(&rec, &lig, &DockParams::fast(), 3);
        let b = dock(&rec, &lig, &DockParams::fast(), 3);
        assert_eq!(a.poses.len(), b.poses.len());
        assert_eq!(a.best_affinity(), b.best_affinity());
        let c = dock(&rec, &lig, &DockParams::fast(), 4);
        // Different seed explores differently (affinities may rarely tie).
        assert!(
            (a.best_affinity() - c.best_affinity()).abs() > 1e-12 || a.poses.len() != c.poses.len()
        );
    }

    #[test]
    fn replicates_record_distinct_seeds() {
        let rec = receptor("LKDS");
        let lig = generate_ligand(5, 10);
        let mut params = DockParams::fast();
        params.exhaustiveness = 2;
        params.mc_steps = 8;
        let outcome = dock_replicates(&rec, &lig, &params, 100, 3);
        assert_eq!(outcome.runs.len(), 3);
        let seeds: std::collections::HashSet<u64> = outcome.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), 3);
        assert!(outcome.mean_best_affinity() <= outcome.runs[0].best_affinity() + 5.0);
        assert!(outcome.best_affinity() <= outcome.mean_best_affinity());
    }

    #[test]
    fn grid_and_direct_agree_on_ranking() {
        let rec = receptor("LKDSVI");
        let lig = generate_ligand(13, 12);
        let mut direct = DockParams::fast();
        direct.use_grids = false;
        let with_grids = dock(&rec, &lig, &DockParams::fast(), 11);
        let without = dock(&rec, &lig, &direct, 11);
        // Same search seed; affinities should land in the same energy
        // regime even though interpolation perturbs the trajectory.
        let d = (with_grids.best_affinity() - without.best_affinity()).abs();
        assert!(d < 2.0, "grid vs direct best affinity differ by {d}");
    }

    #[test]
    fn local_only_stays_near_input_pose() {
        let rec = receptor("LKDSVI");
        let mut lig = generate_ligand(42, 14);
        let c = lig.centroid();
        lig.translate(-c);
        // Put the ligand at a known surface offset.
        lig.translate(Vec3::new(6.0, 0.0, 0.0));
        let mut params = DockParams::fast();
        params.local_only = true;
        params.center = lig.centroid();
        let run = dock(&rec, &lig, &params, 5);
        assert!(!run.poses.is_empty());
        // Every reported pose's centroid stays within a few Å of the input
        // site (local refinement, not global search).
        for pose in &run.poses {
            let centroid = pose
                .coords
                .iter()
                .fold(Vec3::ZERO, |acc, &p| acc + p / pose.coords.len() as f64);
            assert!(
                centroid.distance(lig.centroid()) < 6.0,
                "local-only pose wandered {:.1} Å",
                centroid.distance(lig.centroid())
            );
        }
        // Deterministic.
        let again = dock(&rec, &lig, &params, 5);
        assert_eq!(run.best_affinity(), again.best_affinity());
    }

    #[test]
    fn rmsd_bounds_consistent() {
        let rec = receptor("LKDSV");
        let lig = generate_ligand(21, 14);
        let run = dock(&rec, &lig, &DockParams::fast(), 5);
        for p in &run.poses {
            assert!(
                p.rmsd_lb <= p.rmsd_ub + 1e-9,
                "lb {} > ub {}",
                p.rmsd_lb,
                p.rmsd_ub
            );
        }
    }
}
