//! The pluggable docking-backend seam.
//!
//! Every docking engine — the Vina-style Monte-Carlo engine in this
//! crate, the QUBO pose generator in `qdb-qubo`, and whatever comes next
//! — implements [`DockBackend`]: a cheap capability probe plus a seeded
//! `dock` call that returns one [`DockRun`] or a typed [`BackendError`].
//! The [`dispatch`](crate::dispatch) module stacks backends into a
//! fallback ladder; this module defines the contract a single rung obeys.
//!
//! Backends are deterministic per `(seed, receptor, ligand, params)`:
//! two calls with identical inputs return byte-identical poses. That is
//! what makes cross-backend agreement (`qdb-bench backend_report`)
//! measurable and content-addressed result caching sound.

use crate::engine::{dock, DockParams, DockRun};
use qdb_mol::ligand::Ligand;
use qdb_mol::structure::Structure;
use qdb_telemetry::Clock;

/// Why a backend refused or failed a docking call. Each variant carries a
/// stable [`kind`](BackendError::kind) and a transient classification the
/// dispatcher and supervisor use to decide between retrying, falling back,
/// and giving up.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendError {
    /// The capability probe failed: this backend cannot handle this
    /// problem at all (wrong size, unsupported mode). Terminal for the
    /// backend; the ladder moves on immediately.
    Unavailable {
        /// Human-readable reason.
        reason: String,
    },
    /// A transient fault (injected chaos, resource hiccup). A plain
    /// retry of the same backend could succeed, but the ladder prefers
    /// falling back over spinning.
    Transient {
        /// Human-readable detail.
        message: String,
    },
    /// The backend ran but produced no finite-scored pose.
    NoPoses,
    /// The backend exceeded its per-backend deadline.
    DeadlineExceeded {
        /// Elapsed time when the violation was detected (ms).
        elapsed_ms: u64,
    },
    /// A deterministic internal failure (bad formulation, solver bug).
    Internal {
        /// Human-readable detail.
        message: String,
    },
}

impl BackendError {
    /// Short stable identifier (the error-taxonomy leaf).
    pub fn kind(&self) -> &'static str {
        match self {
            BackendError::Unavailable { .. } => "unavailable",
            BackendError::Transient { .. } => "transient",
            BackendError::NoPoses => "no-poses",
            BackendError::DeadlineExceeded { .. } => "deadline-exceeded",
            BackendError::Internal { .. } => "internal",
        }
    }

    /// Whether retrying the *same* backend could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, BackendError::Transient { .. })
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unavailable { reason } => write!(f, "backend unavailable: {reason}"),
            BackendError::Transient { message } => write!(f, "transient backend fault: {message}"),
            BackendError::NoPoses => write!(f, "backend produced no finite-scored poses"),
            BackendError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "backend exceeded its deadline after {elapsed_ms} ms")
            }
            BackendError::Internal { message } => write!(f, "backend failed: {message}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Per-call execution context: the clock the deadline is measured on and
/// the budget itself. Backends check [`expired`](DockContext::expired) at
/// their own attempt boundaries (between chains, restarts, refinements) —
/// cooperative cancellation, exactly like the supervisor's.
#[derive(Clone, Copy, Debug)]
pub struct DockContext<'a> {
    /// Time source (production: monotonic; tests: manual).
    pub clock: &'a dyn Clock,
    /// Wall-clock budget for this backend call (ms); `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// `clock.now_ns()` at the moment the dispatcher handed over.
    pub started_ns: u64,
}

impl<'a> DockContext<'a> {
    /// An unbounded context starting now.
    pub fn unbounded(clock: &'a dyn Clock) -> Self {
        Self {
            clock,
            deadline_ms: None,
            started_ns: clock.now_ns(),
        }
    }

    /// Milliseconds spent so far.
    pub fn elapsed_ms(&self) -> u64 {
        self.clock.elapsed_ms(self.started_ns)
    }

    /// True when the deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        self.deadline_ms
            .map(|d| self.elapsed_ms() >= d)
            .unwrap_or(false)
    }

    /// The typed error for an expired context.
    pub fn deadline_error(&self) -> BackendError {
        BackendError::DeadlineExceeded {
            elapsed_ms: self.elapsed_ms(),
        }
    }
}

/// One docking engine behind the dispatch seam.
pub trait DockBackend: Send + Sync {
    /// Stable backend name — recorded in every result, job status, and
    /// telemetry counter (`dock.backend.<name>.*`).
    fn name(&self) -> &'static str;

    /// Cheap capability check: can this backend handle this problem at
    /// all? Runs before any grid is built; an `Err` moves the ladder on
    /// without charging a full docking attempt.
    fn probe(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
    ) -> Result<(), BackendError>;

    /// One seeded docking run. Must be deterministic per
    /// `(seed, receptor, ligand, params)` and should honor
    /// `ctx.expired()` at internal attempt boundaries.
    fn dock(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
        seed: u64,
        ctx: &DockContext<'_>,
    ) -> Result<DockRun, BackendError>;
}

/// Validates a run for the backend contract: at least one pose with a
/// finite affinity. Shared by every backend's final check.
pub fn require_finite_poses(run: DockRun) -> Result<DockRun, BackendError> {
    if run.poses.iter().any(|p| p.affinity.is_finite()) {
        Ok(run)
    } else {
        Err(BackendError::NoPoses)
    }
}

/// The existing Vina-style Monte-Carlo engine, ported onto the seam.
/// This is the ladder's reliable last rung: grids, MC chains, compass
/// refinement, clustering — unchanged from [`crate::engine::dock`].
#[derive(Clone, Copy, Debug, Default)]
pub struct VinaBackend;

impl DockBackend for VinaBackend {
    fn name(&self) -> &'static str {
        "vina"
    }

    fn probe(
        &self,
        _receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
    ) -> Result<(), BackendError> {
        if ligand.num_atoms() == 0 {
            return Err(BackendError::Unavailable {
                reason: "empty ligand".to_string(),
            });
        }
        if params.box_size.x <= 0.0 || params.box_size.y <= 0.0 || params.box_size.z <= 0.0 {
            return Err(BackendError::Unavailable {
                reason: "degenerate search box".to_string(),
            });
        }
        Ok(())
    }

    fn dock(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
        seed: u64,
        _ctx: &DockContext<'_>,
    ) -> Result<DockRun, BackendError> {
        require_finite_poses(dock(receptor, ligand, params, seed))
    }
}

/// Deterministic fault injection for the ladder: wraps a backend and
/// fails its first `fail_calls` dock calls with a rehearsed error. The
/// probe passes through, so the chaos exercises the *fallback* path, not
/// the probe path. Used by the dispatcher chaos tests and
/// `backend_report --chaos`.
pub struct FaultInjectedBackend<B> {
    /// The wrapped backend.
    pub inner: B,
    /// How many dock calls fail before the inner backend is allowed to
    /// run (`u64::MAX` = always fail).
    pub fail_calls: u64,
    /// Whether the injected error reads as transient.
    pub transient: bool,
    calls: std::sync::atomic::AtomicU64,
}

impl<B> FaultInjectedBackend<B> {
    /// Wraps `inner` so its first `fail_calls` dock calls fail.
    pub fn new(inner: B, fail_calls: u64, transient: bool) -> Self {
        Self {
            inner,
            fail_calls,
            transient,
            calls: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl<B: DockBackend> DockBackend for FaultInjectedBackend<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn probe(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
    ) -> Result<(), BackendError> {
        self.inner.probe(receptor, ligand, params)
    }

    fn dock(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
        seed: u64,
        ctx: &DockContext<'_>,
    ) -> Result<DockRun, BackendError> {
        let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if call < self.fail_calls {
            let message = format!("injected fault (call {call} of {})", self.fail_calls);
            return Err(if self.transient {
                BackendError::Transient { message }
            } else {
                BackendError::Internal { message }
            });
        }
        self.inner.dock(receptor, ligand, params, seed, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ScoredPose;
    use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
    use qdb_mol::geometry::Vec3;
    use qdb_mol::ligand::generate_ligand;
    use qdb_telemetry::ManualClock;

    fn receptor() -> Structure {
        let s = 3.8 / (3.0f64).sqrt();
        let dirs = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.0, -1.0, -1.0),
            Vec3::new(-1.0, 1.0, -1.0),
        ];
        let mut p = Vec3::ZERO;
        let mut trace = vec![p];
        for i in 0..4 {
            let d = dirs[i % 3] * if i % 2 == 0 { 1.0 } else { -1.0 };
            p += d * s;
            trace.push(p);
        }
        let specs: Vec<ResidueSpec> = "LKDSV"
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "UNK".into(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        let mut s = build_peptide(&trace, &specs);
        s.center();
        s
    }

    #[test]
    fn vina_backend_matches_the_direct_engine() {
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let params = DockParams::fast();
        let clock = ManualClock::new();
        let ctx = DockContext::unbounded(&clock);
        let via_seam = VinaBackend.dock(&rec, &lig, &params, 3, &ctx).unwrap();
        let direct = dock(&rec, &lig, &params, 3);
        assert_eq!(via_seam.best_affinity(), direct.best_affinity());
        assert_eq!(via_seam.poses.len(), direct.poses.len());
    }

    #[test]
    fn probe_rejects_degenerate_inputs() {
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let mut params = DockParams::fast();
        params.box_size = Vec3::new(0.0, 10.0, 10.0);
        let err = VinaBackend.probe(&rec, &lig, &params).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(!err.is_transient());
    }

    #[test]
    fn finite_pose_contract_rejects_all_nan_runs() {
        let run = DockRun {
            seed: 1,
            poses: vec![ScoredPose {
                coords: vec![Vec3::ZERO],
                affinity: f64::NAN,
                rmsd_lb: 0.0,
                rmsd_ub: 0.0,
            }],
        };
        assert_eq!(
            require_finite_poses(run).unwrap_err(),
            BackendError::NoPoses
        );
    }

    #[test]
    fn fault_injection_fails_then_recovers() {
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let params = DockParams::fast();
        let clock = ManualClock::new();
        let ctx = DockContext::unbounded(&clock);
        let flaky = FaultInjectedBackend::new(VinaBackend, 2, true);
        let e1 = flaky.dock(&rec, &lig, &params, 3, &ctx).unwrap_err();
        assert_eq!(e1.kind(), "transient");
        assert!(e1.is_transient());
        let e2 = flaky.dock(&rec, &lig, &params, 3, &ctx).unwrap_err();
        assert_eq!(e2.kind(), "transient");
        let run = flaky.dock(&rec, &lig, &params, 3, &ctx).unwrap();
        assert!(!run.poses.is_empty());
    }

    #[test]
    fn deadline_context_expires_on_the_clock_seam() {
        let clock = ManualClock::new();
        let ctx = DockContext {
            clock: &clock,
            deadline_ms: Some(100),
            started_ns: clock.now_ns(),
        };
        assert!(!ctx.expired());
        clock.advance_ms(99);
        assert!(!ctx.expired());
        clock.advance_ms(1);
        assert!(ctx.expired());
        assert_eq!(ctx.deadline_error().kind(), "deadline-exceeded");
    }
}
