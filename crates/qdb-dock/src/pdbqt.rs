//! PDBQT export (paper §7.1): "structures can be readily converted into
//! the PDBQT format required by docking software such as AutoDock and
//! AutoDock Vina". This module performs that conversion directly —
//! AutoDock atom typing, approximate partial charges, and the
//! ROOT/BRANCH/TORSDOF torsion tree for ligands.

use qdb_mol::element::Element;
use qdb_mol::ligand::Ligand;
use qdb_mol::structure::Structure;
use std::fmt::Write as _;

/// AutoDock atom types used by this exporter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdType {
    /// Aliphatic carbon.
    C,
    /// Aromatic carbon.
    A,
    /// Nitrogen (non-acceptor).
    N,
    /// Nitrogen acceptor.
    NA,
    /// Oxygen acceptor.
    OA,
    /// Sulfur acceptor.
    SA,
    /// Sulfur (non-acceptor).
    S,
    /// Phosphorus.
    P,
    /// Fluorine.
    F,
    /// Chlorine.
    Cl,
    /// Bromine.
    Br,
    /// Iodine.
    I,
    /// Polar hydrogen.
    HD,
}

impl AdType {
    /// PDBQT column string.
    pub fn label(self) -> &'static str {
        match self {
            AdType::C => "C",
            AdType::A => "A",
            AdType::N => "N",
            AdType::NA => "NA",
            AdType::OA => "OA",
            AdType::SA => "SA",
            AdType::S => "S",
            AdType::P => "P",
            AdType::F => "F",
            AdType::Cl => "Cl",
            AdType::Br => "Br",
            AdType::I => "I",
            AdType::HD => "HD",
        }
    }
}

/// AutoDock type of a receptor atom (united-atom protein heuristics,
/// matching `types::type_receptor`).
pub fn receptor_ad_type(atom_name: &str, element: Element) -> AdType {
    match element {
        Element::C => AdType::C,
        Element::N => {
            if atom_name == "N" {
                AdType::N // backbone amide N (donor, not acceptor)
            } else {
                AdType::NA // side-chain N
            }
        }
        Element::O => AdType::OA,
        Element::S => AdType::SA,
        Element::P => AdType::P,
        Element::F => AdType::F,
        Element::Cl => AdType::Cl,
        Element::Br => AdType::Br,
        Element::I => AdType::I,
        Element::H => AdType::HD,
    }
}

/// Approximate Gasteiger-magnitude partial charge for a receptor atom.
/// These are the textbook peptide charges used when a full charge model
/// is unavailable; docking scores in this workspace do not consume them
/// (they exist for interoperability of the exported files).
pub fn receptor_charge(atom_name: &str, element: Element) -> f64 {
    match (atom_name, element) {
        ("N", Element::N) => -0.347,
        ("CA", Element::C) => 0.177,
        ("C", Element::C) => 0.241,
        ("O", Element::O) => -0.271,
        ("CB", Element::C) => 0.038,
        (_, Element::O) => -0.393,
        (_, Element::N) => -0.338,
        (_, Element::S) => -0.108,
        (_, Element::C) => 0.02,
        _ => 0.0,
    }
}

fn format_pdbqt_atom(
    serial: usize,
    name: &str,
    res_name: &str,
    chain: char,
    res_seq: i32,
    pos: [f64; 3],
    charge: f64,
    ad_type: AdType,
) -> String {
    let name_field = if name.len() >= 4 {
        format!("{name:<4}")
    } else {
        format!(" {name:<3}")
    };
    format!(
        "ATOM  {serial:>5} {name_field}{alt}{res:<3} {chain}{seq:>4}{icode}   {x:>8.3}{y:>8.3}{z:>8.3}{occ:>6.2}{b:>6.2}    {q:>6.3} {t:<2}",
        serial = serial,
        name_field = name_field,
        alt = ' ',
        res = res_name,
        chain = chain,
        seq = res_seq,
        icode = ' ',
        x = pos[0],
        y = pos[1],
        z = pos[2],
        occ = 1.0,
        b = 0.0,
        q = charge,
        t = ad_type.label(),
    )
}

/// Serializes a rigid receptor to PDBQT.
pub fn write_receptor_pdbqt(receptor: &Structure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "REMARK  QDockBank-rs rigid receptor");
    let mut serial = 1usize;
    for res in &receptor.residues {
        for atom in &res.atoms {
            let ad = receptor_ad_type(&atom.name, atom.element);
            let q = receptor_charge(&atom.name, atom.element);
            let _ = writeln!(
                out,
                "{}",
                format_pdbqt_atom(
                    serial,
                    &atom.name,
                    &res.name,
                    receptor.chain_id,
                    res.seq_num,
                    atom.pos.to_array(),
                    q,
                    ad,
                )
            );
            serial += 1;
        }
    }
    out.push_str("TER\n");
    out
}

/// AutoDock type of a ligand atom.
fn ligand_ad_type(atom: &qdb_mol::ligand::LigandAtom) -> AdType {
    match atom.element {
        Element::C => AdType::C,
        Element::N => {
            if atom.acceptor {
                AdType::NA
            } else {
                AdType::N
            }
        }
        Element::O => AdType::OA,
        Element::S => AdType::SA,
        Element::P => AdType::P,
        Element::F => AdType::F,
        Element::Cl => AdType::Cl,
        Element::Br => AdType::Br,
        Element::I => AdType::I,
        Element::H => AdType::HD,
    }
}

fn ligand_charge(atom: &qdb_mol::ligand::LigandAtom) -> f64 {
    match atom.element {
        Element::O => -0.35,
        Element::N => -0.30,
        Element::S => -0.10,
        Element::F => -0.22,
        _ => 0.03,
    }
}

/// Serializes a ligand to PDBQT with its ROOT/BRANCH torsion tree and
/// `TORSDOF` record.
///
/// The branch nesting mirrors the generator's torsion tree: an atom
/// belongs to the innermost branch whose moving set contains it; atoms in
/// no moving set form the ROOT block.
pub fn write_ligand_pdbqt(ligand: &Ligand) -> String {
    let n = ligand.num_atoms();
    // innermost containing torsion per atom (smallest moving set wins)
    let mut owner: Vec<Option<usize>> = vec![None; n];
    for (t, torsion) in ligand.torsions.iter().enumerate() {
        for &m in &torsion.moving {
            let better = match owner[m] {
                None => true,
                Some(prev) => torsion.moving.len() < ligand.torsions[prev].moving.len(),
            };
            if better {
                owner[m] = Some(t);
            }
        }
    }
    // direct parent torsion of each torsion: the innermost torsion owning
    // its anchor atom `b`'s parent side... equivalently, the innermost
    // *other* torsion whose moving set strictly contains this one's.
    let parent_of = |t: usize| -> Option<usize> {
        let mine = &ligand.torsions[t].moving;
        ligand
            .torsions
            .iter()
            .enumerate()
            .filter(|(o, tor)| {
                *o != t
                    && tor.moving.len() > mine.len()
                    && mine.iter().all(|m| tor.moving.contains(m))
            })
            .min_by_key(|(_, tor)| tor.moving.len())
            .map(|(o, _)| o)
    };
    let children: Vec<Vec<usize>> = {
        let mut c = vec![Vec::new(); ligand.torsions.len() + 1];
        for t in 0..ligand.torsions.len() {
            match parent_of(t) {
                Some(p) => c[p + 1].push(t),
                None => c[0].push(t), // child of ROOT
            }
        }
        c
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "REMARK  QDockBank-rs ligand, {} active torsions",
        ligand.num_rotatable()
    );
    let mut serial = 1usize;
    let mut atom_serial: Vec<usize> = vec![0; n];
    let emit_atoms =
        |out: &mut String, serial: &mut usize, atom_serial: &mut Vec<usize>, atoms: &[usize]| {
            let mut counters = std::collections::HashMap::new();
            for &i in atoms {
                let atom = &ligand.atoms[i];
                let k = counters.entry(atom.element).or_insert(0usize);
                *k += 1;
                let name = format!("{}{}", atom.element.symbol(), i + 1);
                let _ = writeln!(
                    out,
                    "{}",
                    format_pdbqt_atom(
                        *serial,
                        &name,
                        "LIG",
                        'L',
                        1,
                        atom.pos.to_array(),
                        ligand_charge(atom),
                        ligand_ad_type(atom),
                    )
                );
                atom_serial[i] = *serial;
                *serial += 1;
            }
        };

    // ROOT block.
    let root_atoms: Vec<usize> = (0..n).filter(|&i| owner[i].is_none()).collect();
    let _ = writeln!(out, "ROOT");
    emit_atoms(&mut out, &mut serial, &mut atom_serial, &root_atoms);
    let _ = writeln!(out, "ENDROOT");

    // Recursive branches (iterative DFS with explicit close markers).
    #[derive(Clone, Copy)]
    enum Step {
        Open(usize),
        Close(usize),
    }
    let mut stack: Vec<Step> = children[0].iter().rev().map(|&t| Step::Open(t)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Open(t) => {
                let torsion = &ligand.torsions[t];
                // Anchor serials may not exist yet for the moving-side atom
                // (it is emitted inside the branch), so emit the branch
                // header with atom indices resolved afterwards; PDBQT uses
                // serials, so emit atoms first in our ordering: the `a`
                // side is always already emitted (root or outer branch).
                let exclusive: Vec<usize> = torsion
                    .moving
                    .iter()
                    .copied()
                    .filter(|&m| owner[m] == Some(t))
                    .collect();
                let a_serial = atom_serial[torsion.a];
                // The `b` atom is the first of this branch's exclusive set
                // by construction of the generator's subtrees.
                let _ = writeln!(out, "BRANCH {a_serial:>3} {b_serial:>3}", b_serial = serial);
                emit_atoms(&mut out, &mut serial, &mut atom_serial, &exclusive);
                stack.push(Step::Close(t));
                for &child in children[t + 1].iter().rev() {
                    stack.push(Step::Open(child));
                }
            }
            Step::Close(t) => {
                let torsion = &ligand.torsions[t];
                let _ = writeln!(
                    out,
                    "ENDBRANCH {:>3} {:>3}",
                    atom_serial[torsion.a], atom_serial[torsion.b]
                );
            }
        }
    }
    let _ = writeln!(out, "TORSDOF {}", ligand.num_rotatable());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
    use qdb_mol::geometry::Vec3;
    use qdb_mol::ligand::generate_ligand;

    fn receptor() -> Structure {
        let trace = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(3.8, 0.0, 0.0),
            Vec3::new(5.0, 3.4, 0.8),
            Vec3::new(8.2, 5.0, 1.2),
        ];
        let specs: Vec<ResidueSpec> = "LKDS"
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "UNK".into(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        build_peptide(&trace, &specs)
    }

    #[test]
    fn receptor_pdbqt_has_types_and_charges() {
        let text = write_receptor_pdbqt(&receptor());
        assert!(text.starts_with("REMARK"));
        assert!(text.trim_end().ends_with("TER"));
        let atom_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("ATOM")).collect();
        assert_eq!(atom_lines.len(), receptor().num_atoms());
        // Every ATOM line carries a parseable charge and a known type.
        for line in atom_lines {
            let charge: f64 = line[70..76].trim().parse().expect("charge field");
            assert!(charge.abs() < 1.0);
            let t = line[77..].trim();
            assert!(
                ["C", "A", "N", "NA", "OA", "SA", "S", "HD"].contains(&t),
                "unexpected type {t:?} in {line}"
            );
        }
        // Backbone N typed as donor N, carbonyl O as OA.
        assert!(text.contains(" N   UNK"));
        let n_line = text.lines().find(|l| l.contains(" N   UNK")).unwrap();
        assert!(n_line.trim_end().ends_with(" N"));
    }

    #[test]
    fn ligand_pdbqt_torsion_tree_is_balanced() {
        for seed in [1u64, 9, 42, 77] {
            let lig = generate_ligand(seed, 18);
            let text = write_ligand_pdbqt(&lig);
            assert_eq!(text.lines().filter(|l| *l == "ROOT").count(), 1);
            assert_eq!(text.lines().filter(|l| *l == "ENDROOT").count(), 1);
            let open = text.lines().filter(|l| l.starts_with("BRANCH")).count();
            let close = text.lines().filter(|l| l.starts_with("ENDBRANCH")).count();
            assert_eq!(open, close, "seed {seed}: unbalanced branches");
            assert_eq!(open, lig.num_rotatable(), "one BRANCH per torsion");
            assert!(text.contains(&format!("TORSDOF {}", lig.num_rotatable())));
            // All atoms emitted exactly once.
            let atoms = text.lines().filter(|l| l.starts_with("ATOM")).count();
            assert_eq!(atoms, lig.num_atoms());
        }
    }

    #[test]
    fn ligand_pdbqt_branch_serials_are_valid() {
        let lig = generate_ligand(5, 16);
        let text = write_ligand_pdbqt(&lig);
        let atom_count = text.lines().filter(|l| l.starts_with("ATOM")).count();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("BRANCH") {
                let parts: Vec<usize> = rest
                    .split_whitespace()
                    .map(|s| s.parse().expect("serial"))
                    .collect();
                assert_eq!(parts.len(), 2);
                for s in parts {
                    assert!(s >= 1 && s <= atom_count, "serial {s} out of range");
                }
            }
        }
    }

    #[test]
    fn coordinates_match_source_structures() {
        let lig = generate_ligand(3, 12);
        let text = write_ligand_pdbqt(&lig);
        // Coordinates in column 31..54, one line per atom; compare the
        // multiset of x-coordinates.
        let mut xs_pdbqt: Vec<f64> = text
            .lines()
            .filter(|l| l.starts_with("ATOM"))
            .map(|l| l[30..38].trim().parse::<f64>().unwrap())
            .collect();
        let mut xs_src: Vec<f64> = lig
            .atoms
            .iter()
            .map(|a| (a.pos.x * 1000.0).round() / 1000.0)
            .collect();
        xs_pdbqt.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs_src.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in xs_pdbqt.iter().zip(&xs_src) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
