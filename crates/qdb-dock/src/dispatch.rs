//! The `auto` docking dispatcher: a bioql-style fallback ladder.
//!
//! A [`Dispatcher`] owns an ordered ladder of [`DockBackend`]s and a
//! [`Clock`]. Each dock request walks the ladder: probe the rung, run it
//! under a per-backend deadline, and on any typed failure fall back to
//! the next rung. The caller gets the first success — annotated with
//! which backend produced it and how many rungs were burned — or, if
//! every rung fails, a [`DispatchError`] carrying the full attempt
//! history. `backend: auto` in the pipeline and job service is exactly
//! the ladder `[qubo, vina]`.
//!
//! Deadlines run through the `Clock` seam, so ladder timing is testable
//! with a `ManualClock`: no real sleeps, no flaky thresholds. A rung
//! that exceeds its budget is abandoned even if it eventually returns a
//! run — except on the final rung, where a late success beats no result.

use crate::backend::{BackendError, DockBackend, DockContext};
use crate::engine::{DockOutcome, DockParams, DockRun};
use qdb_mol::ligand::Ligand;
use qdb_mol::structure::Structure;
use qdb_telemetry::Clock;

/// Which backend (or ladder) a caller asked for. This is the value that
/// flows through `PipelineConfig`, serve job requests, and idempotency
/// keys.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// The Vina-style Monte-Carlo engine only.
    #[default]
    Vina,
    /// The QUBO pose generator only.
    Qubo,
    /// The fallback ladder: QUBO first, Vina as the reliable last rung.
    Auto,
}

impl BackendChoice {
    /// Canonical lowercase name (what job requests and manifests use).
    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::Vina => "vina",
            BackendChoice::Qubo => "qubo",
            BackendChoice::Auto => "auto",
        }
    }

    /// Parses a request string. `"qdock"` is accepted as a legacy alias
    /// for the Vina engine (the service's original backend label).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "vina" | "qdock" => Some(BackendChoice::Vina),
            "qubo" => Some(BackendChoice::Qubo),
            "auto" => Some(BackendChoice::Auto),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ladder policy knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct DispatchPolicy {
    /// Wall-clock budget per backend attempt (ms); `None` = unbounded.
    /// Measured on the dispatcher's clock and passed to the backend as
    /// its [`DockContext`] deadline.
    pub per_backend_deadline_ms: Option<u64>,
}

/// One rung's outcome in the attempt history.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendAttempt {
    /// Backend name.
    pub backend: &'static str,
    /// `None` on success, otherwise the stable error kind.
    pub error_kind: Option<&'static str>,
    /// Whether the failure was classified transient.
    pub transient: bool,
    /// Wall-clock spent on this rung (ms, dispatcher clock).
    pub elapsed_ms: u64,
}

/// A successful dispatch: the run plus its provenance.
#[derive(Clone, Debug)]
pub struct DispatchResult {
    /// The winning run.
    pub run: DockRun,
    /// Backend that produced it.
    pub backend: &'static str,
    /// Rungs burned before the winner (0 = first choice succeeded).
    pub fallbacks: u64,
    /// Full per-rung history, winner included.
    pub attempts: Vec<BackendAttempt>,
}

/// Every rung failed.
#[derive(Clone, Debug)]
pub struct DispatchError {
    /// Full per-rung history.
    pub attempts: Vec<BackendAttempt>,
    /// The final rung's error (what the caller surfaces).
    pub last: BackendError,
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "all {} docking backend(s) failed; last: {}",
            self.attempts.len(),
            self.last
        )
    }
}

impl std::error::Error for DispatchError {}

/// Replicated dispatch (the paper's multi-seed protocol through the
/// ladder). Each run walks the ladder independently, so a transient
/// failure on one seed degrades only that seed.
#[derive(Clone, Debug)]
pub struct DispatchedReplicates {
    /// All runs, in seed order (same seed schedule as
    /// [`crate::engine::dock_replicates`]).
    pub outcome: DockOutcome,
    /// Aggregate backend label: the single backend name when every run
    /// used the same rung, `"mixed"` otherwise.
    pub backend: String,
    /// Backend that produced each run, in seed order.
    pub run_backends: Vec<&'static str>,
    /// Total rungs burned across all runs.
    pub fallbacks: u64,
}

/// The fallback ladder executor.
pub struct Dispatcher<'a> {
    ladder: Vec<&'a dyn DockBackend>,
    clock: &'a dyn Clock,
    policy: DispatchPolicy,
}

impl<'a> Dispatcher<'a> {
    /// Builds a dispatcher over `ladder` (tried in order; must be
    /// non-empty by the time `dock` is called).
    pub fn new(
        ladder: Vec<&'a dyn DockBackend>,
        clock: &'a dyn Clock,
        policy: DispatchPolicy,
    ) -> Self {
        Self {
            ladder,
            clock,
            policy,
        }
    }

    /// Walks the ladder once for a single seeded run.
    pub fn dock(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
        seed: u64,
    ) -> Result<DispatchResult, DispatchError> {
        let telemetry = qdb_telemetry::global();
        telemetry.counter("dock.backend.dispatches").inc();

        let mut attempts: Vec<BackendAttempt> = Vec::with_capacity(self.ladder.len());
        let mut last = BackendError::Unavailable {
            reason: "empty backend ladder".to_string(),
        };
        let rungs = self.ladder.len();
        for (rung, backend) in self.ladder.iter().enumerate() {
            let started_ns = self.clock.now_ns();
            let ctx = DockContext {
                clock: self.clock,
                deadline_ms: self.policy.per_backend_deadline_ms,
                started_ns,
            };
            let result = backend
                .probe(receptor, ligand, params)
                .and_then(|()| backend.dock(receptor, ligand, params, seed, &ctx))
                .and_then(|run| {
                    // A rung that blew its budget is not trusted even if it
                    // returned: the ladder exists to bound tail latency. The
                    // final rung is the exception — a late success beats no
                    // result.
                    if ctx.expired() && rung + 1 < rungs {
                        Err(ctx.deadline_error())
                    } else {
                        Ok(run)
                    }
                });
            let elapsed_ms = self.clock.elapsed_ms(started_ns);
            match result {
                Ok(run) => {
                    telemetry
                        .counter(&format!("dock.backend.{}.runs", backend.name()))
                        .inc();
                    attempts.push(BackendAttempt {
                        backend: backend.name(),
                        error_kind: None,
                        transient: false,
                        elapsed_ms,
                    });
                    return Ok(DispatchResult {
                        run,
                        backend: backend.name(),
                        fallbacks: rung as u64,
                        attempts,
                    });
                }
                Err(err) => {
                    telemetry
                        .counter(&format!("dock.backend.{}.errors", backend.name()))
                        .inc();
                    if rung + 1 < rungs {
                        telemetry.counter("dock.backend.fallbacks").inc();
                    }
                    attempts.push(BackendAttempt {
                        backend: backend.name(),
                        error_kind: Some(err.kind()),
                        transient: err.is_transient(),
                        elapsed_ms,
                    });
                    last = err;
                }
            }
        }
        Err(DispatchError { attempts, last })
    }

    /// The paper's replicate protocol through the ladder: `num_runs`
    /// independent dispatches with the same seed schedule as
    /// [`crate::engine::dock_replicates`], so a pure-Vina ladder is
    /// byte-identical to the legacy path. Fails only if *every* rung
    /// fails for some seed.
    pub fn replicates(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
        base_seed: u64,
        num_runs: usize,
    ) -> Result<DispatchedReplicates, DispatchError> {
        let mut runs = Vec::with_capacity(num_runs);
        let mut run_backends = Vec::with_capacity(num_runs);
        let mut fallbacks = 0u64;
        for i in 0..num_runs as u64 {
            let seed = base_seed.wrapping_add(i * 0x1000_0000_0001);
            let result = self.dock(receptor, ligand, params, seed)?;
            fallbacks += result.fallbacks;
            run_backends.push(result.backend);
            runs.push(result.run);
        }
        let backend = match run_backends.first() {
            Some(&first) if run_backends.iter().all(|&b| b == first) => first.to_string(),
            Some(_) => "mixed".to_string(),
            None => "none".to_string(),
        };
        Ok(DispatchedReplicates {
            outcome: DockOutcome { runs },
            backend,
            run_backends,
            fallbacks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultInjectedBackend, VinaBackend};
    use crate::cluster::ScoredPose;
    use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
    use qdb_mol::geometry::Vec3;
    use qdb_mol::ligand::generate_ligand;
    use qdb_telemetry::ManualClock;

    /// A scripted backend: optionally advances the (manual) clock to
    /// simulate work, then succeeds or fails.
    struct StubBackend<'c> {
        name: &'static str,
        clock: &'c ManualClock,
        advance_ms: u64,
        fail: Option<BackendError>,
    }

    impl<'c> StubBackend<'c> {
        fn ok(name: &'static str, clock: &'c ManualClock, advance_ms: u64) -> Self {
            Self {
                name,
                clock,
                advance_ms,
                fail: None,
            }
        }

        fn failing(name: &'static str, clock: &'c ManualClock, err: BackendError) -> Self {
            Self {
                name,
                clock,
                advance_ms: 0,
                fail: Some(err),
            }
        }
    }

    impl DockBackend for StubBackend<'_> {
        fn name(&self) -> &'static str {
            self.name
        }

        fn probe(
            &self,
            _receptor: &Structure,
            _ligand: &Ligand,
            _params: &DockParams,
        ) -> Result<(), BackendError> {
            Ok(())
        }

        fn dock(
            &self,
            _receptor: &Structure,
            _ligand: &Ligand,
            _params: &DockParams,
            seed: u64,
            _ctx: &DockContext<'_>,
        ) -> Result<DockRun, BackendError> {
            self.clock.advance_ms(self.advance_ms);
            if let Some(err) = &self.fail {
                return Err(err.clone());
            }
            Ok(DockRun {
                seed,
                poses: vec![ScoredPose {
                    coords: vec![Vec3::ZERO],
                    affinity: -5.0,
                    rmsd_lb: 0.0,
                    rmsd_ub: 0.0,
                }],
            })
        }
    }

    fn receptor() -> Structure {
        let s = 3.8 / (3.0f64).sqrt();
        let dirs = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.0, -1.0, -1.0),
            Vec3::new(-1.0, 1.0, -1.0),
        ];
        let mut p = Vec3::ZERO;
        let mut trace = vec![p];
        for i in 0..4 {
            let d = dirs[i % 3] * if i % 2 == 0 { 1.0 } else { -1.0 };
            p += d * s;
            trace.push(p);
        }
        let specs: Vec<ResidueSpec> = "LKDSV"
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "UNK".into(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        let mut s = build_peptide(&trace, &specs);
        s.center();
        s
    }

    #[test]
    fn choice_parsing_round_trips_and_accepts_the_legacy_alias() {
        for c in [
            BackendChoice::Vina,
            BackendChoice::Qubo,
            BackendChoice::Auto,
        ] {
            assert_eq!(BackendChoice::parse(c.name()), Some(c));
        }
        assert_eq!(BackendChoice::parse("qdock"), Some(BackendChoice::Vina));
        assert_eq!(BackendChoice::parse("alphafold"), None);
        assert_eq!(BackendChoice::default(), BackendChoice::Vina);
    }

    #[test]
    fn first_rung_success_burns_no_fallbacks() {
        let clock = ManualClock::new();
        let first = StubBackend::ok("first", &clock, 1);
        let second = StubBackend::ok("second", &clock, 1);
        let d = Dispatcher::new(vec![&first, &second], &clock, DispatchPolicy::default());
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let out = d.dock(&rec, &lig, &DockParams::fast(), 7).unwrap();
        assert_eq!(out.backend, "first");
        assert_eq!(out.fallbacks, 0);
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.attempts[0].error_kind, None);
    }

    #[test]
    fn failure_falls_back_in_ladder_order() {
        let clock = ManualClock::new();
        let flaky = StubBackend::failing(
            "flaky",
            &clock,
            BackendError::Transient {
                message: "hiccup".into(),
            },
        );
        let solid = StubBackend::ok("solid", &clock, 1);
        let d = Dispatcher::new(vec![&flaky, &solid], &clock, DispatchPolicy::default());
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let out = d.dock(&rec, &lig, &DockParams::fast(), 7).unwrap();
        assert_eq!(out.backend, "solid");
        assert_eq!(out.fallbacks, 1);
        assert_eq!(
            out.attempts.iter().map(|a| a.backend).collect::<Vec<_>>(),
            vec!["flaky", "solid"]
        );
        assert_eq!(out.attempts[0].error_kind, Some("transient"));
        assert!(out.attempts[0].transient);
    }

    #[test]
    fn deadline_violation_abandons_a_non_final_rung() {
        let clock = ManualClock::new();
        // "slow" takes 50 ms against a 20 ms budget; "fast" takes 1 ms.
        let slow = StubBackend::ok("slow", &clock, 50);
        let fast = StubBackend::ok("fast", &clock, 1);
        let policy = DispatchPolicy {
            per_backend_deadline_ms: Some(20),
        };
        let d = Dispatcher::new(vec![&slow, &fast], &clock, policy);
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let out = d.dock(&rec, &lig, &DockParams::fast(), 7).unwrap();
        assert_eq!(out.backend, "fast");
        assert_eq!(out.fallbacks, 1);
        assert_eq!(out.attempts[0].error_kind, Some("deadline-exceeded"));
        assert_eq!(out.attempts[0].elapsed_ms, 50);
    }

    #[test]
    fn late_success_on_the_final_rung_is_accepted() {
        let clock = ManualClock::new();
        let slow = StubBackend::ok("slow", &clock, 50);
        let policy = DispatchPolicy {
            per_backend_deadline_ms: Some(20),
        };
        let d = Dispatcher::new(vec![&slow], &clock, policy);
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let out = d.dock(&rec, &lig, &DockParams::fast(), 7).unwrap();
        assert_eq!(out.backend, "slow");
        assert_eq!(out.fallbacks, 0);
    }

    #[test]
    fn total_failure_preserves_the_attempt_history() {
        let clock = ManualClock::new();
        let a = StubBackend::failing(
            "a",
            &clock,
            BackendError::Internal {
                message: "bad formulation".into(),
            },
        );
        let b = StubBackend::failing("b", &clock, BackendError::NoPoses);
        let d = Dispatcher::new(vec![&a, &b], &clock, DispatchPolicy::default());
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let err = d.dock(&rec, &lig, &DockParams::fast(), 7).unwrap_err();
        assert_eq!(err.last, BackendError::NoPoses);
        assert_eq!(err.attempts.len(), 2);
        assert_eq!(err.attempts[0].error_kind, Some("internal"));
        assert_eq!(err.attempts[1].error_kind, Some("no-poses"));
    }

    #[test]
    fn vina_only_ladder_matches_legacy_replicates_exactly() {
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let params = DockParams::fast();
        let clock = ManualClock::new();
        let vina = VinaBackend;
        let d = Dispatcher::new(vec![&vina], &clock, DispatchPolicy::default());
        let via_ladder = d.replicates(&rec, &lig, &params, 100, 3).unwrap();
        let legacy = crate::engine::dock_replicates(&rec, &lig, &params, 100, 3);
        assert_eq!(via_ladder.backend, "vina");
        assert_eq!(via_ladder.fallbacks, 0);
        assert_eq!(via_ladder.outcome.runs.len(), legacy.runs.len());
        for (a, b) in via_ladder.outcome.runs.iter().zip(legacy.runs.iter()) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.best_affinity(), b.best_affinity());
        }
    }

    #[test]
    fn chaos_on_one_seed_degrades_only_that_seed() {
        let rec = receptor();
        let lig = generate_ligand(9, 12);
        let params = DockParams::fast();
        let clock = ManualClock::new();
        // First dock call through this rung fails; later calls succeed.
        let flaky = FaultInjectedBackend::new(StubBackend::ok("qsim", &clock, 0), 1, true);
        let vina = VinaBackend;
        let ladder: Vec<&dyn DockBackend> = vec![&flaky, &vina];
        let d = Dispatcher::new(ladder, &clock, DispatchPolicy::default());
        let reps = d.replicates(&rec, &lig, &params, 100, 3).unwrap();
        assert_eq!(reps.fallbacks, 1);
        assert_eq!(reps.backend, "mixed");
        assert_eq!(reps.run_backends, vec!["vina", "qsim", "qsim"]);
        assert_eq!(reps.outcome.runs.len(), 3);
    }
}
