//! The AutoDock Vina empirical scoring function (Trott & Olson 2010).
//!
//! Five terms over the surface distance `d = r − R_i − R_j`, truncated at
//! 8 Å center distance, with the published weights; the reported affinity
//! divides the intermolecular energy by `1 + w_rot·N_rot`.

use crate::types::TypedAtom;

/// Published Vina weights.
pub mod weights {
    /// gauss1 weight.
    pub const GAUSS1: f64 = -0.035579;
    /// gauss2 weight.
    pub const GAUSS2: f64 = -0.005156;
    /// repulsion weight.
    pub const REPULSION: f64 = 0.840245;
    /// hydrophobic weight.
    pub const HYDROPHOBIC: f64 = -0.035069;
    /// hydrogen-bond weight.
    pub const HBOND: f64 = -0.587439;
    /// N_rot penalty weight.
    pub const ROT: f64 = 0.05846;
}

/// Interaction cutoff on center-to-center distance (Å).
pub const CUTOFF: f64 = 8.0;

/// The five raw term values for one atom pair at surface distance `d`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Terms {
    /// exp(−(d/0.5)²).
    pub gauss1: f64,
    /// exp(−((d−3)/2)²).
    pub gauss2: f64,
    /// d² for d < 0.
    pub repulsion: f64,
    /// Hydrophobic ramp.
    pub hydrophobic: f64,
    /// H-bond ramp.
    pub hbond: f64,
}

impl Terms {
    /// Weighted sum.
    pub fn weighted(&self) -> f64 {
        weights::GAUSS1 * self.gauss1
            + weights::GAUSS2 * self.gauss2
            + weights::REPULSION * self.repulsion
            + weights::HYDROPHOBIC * self.hydrophobic
            + weights::HBOND * self.hbond
    }
}

/// Evaluates the raw terms for an atom pair (0 beyond the cutoff).
#[inline]
pub fn pair_terms(a: &TypedAtom, b: &TypedAtom) -> Terms {
    let r = a.pos.distance(b.pos);
    if r > CUTOFF {
        return Terms::default();
    }
    // Parenthesized so the score is *exactly* symmetric in (a, b).
    let d = r - (a.radius + b.radius);
    let mut t = Terms {
        gauss1: (-(d / 0.5) * (d / 0.5)).exp(),
        gauss2: (-((d - 3.0) / 2.0) * ((d - 3.0) / 2.0)).exp(),
        repulsion: if d < 0.0 { d * d } else { 0.0 },
        hydrophobic: 0.0,
        hbond: 0.0,
    };
    if a.hydrophobic && b.hydrophobic {
        t.hydrophobic = ramp(d, 0.5, 1.5);
    }
    let hb_pair = (a.donor && b.acceptor) || (a.acceptor && b.donor);
    if hb_pair {
        t.hbond = ramp(d, -0.7, 0.0);
    }
    t
}

/// Linear ramp: 1 below `lo`, 0 above `hi`.
#[inline]
fn ramp(d: f64, lo: f64, hi: f64) -> f64 {
    if d <= lo {
        1.0
    } else if d >= hi {
        0.0
    } else {
        (hi - d) / (hi - lo)
    }
}

/// Weighted interaction energy of one pair.
#[inline]
pub fn pair_energy(a: &TypedAtom, b: &TypedAtom) -> f64 {
    pair_terms(a, b).weighted()
}

/// Total intermolecular energy between a ligand pose and the receptor.
pub fn intermolecular(ligand: &[TypedAtom], receptor: &[TypedAtom]) -> f64 {
    ligand
        .iter()
        .map(|la| receptor.iter().map(|ra| pair_energy(la, ra)).sum::<f64>())
        .sum()
}

/// Intramolecular ligand energy over pairs at bond-path distance ≥ 4
/// (`pairs` precomputed by the engine).
pub fn intramolecular(ligand: &[TypedAtom], pairs: &[(usize, usize)]) -> f64 {
    pairs
        .iter()
        .map(|&(i, j)| pair_energy(&ligand[i], &ligand[j]))
        .sum()
}

/// Converts intermolecular energy to the reported affinity (kcal/mol):
/// `e_inter / (1 + w_rot·N_rot)`.
pub fn affinity(e_inter: f64, n_rot: usize) -> f64 {
    e_inter / (1.0 + weights::ROT * n_rot as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_mol::geometry::Vec3;

    fn atom(x: f64, hydrophobic: bool, donor: bool, acceptor: bool) -> TypedAtom {
        TypedAtom {
            pos: Vec3::new(x, 0.0, 0.0),
            radius: 1.9,
            hydrophobic,
            donor,
            acceptor,
        }
    }

    #[test]
    fn contact_distance_is_attractive_overlap_repulsive() {
        let a = atom(0.0, false, false, false);
        // Surface contact: d = 0 → gauss1 = 1 (max attraction).
        let at_contact = atom(3.8, false, false, false);
        let e_contact = pair_energy(&a, &at_contact);
        assert!(e_contact < 0.0, "contact should attract, got {e_contact}");
        // Deep overlap: repulsion dominates.
        let overlapping = atom(1.0, false, false, false);
        let e_overlap = pair_energy(&a, &overlapping);
        assert!(
            e_overlap > 1.0,
            "overlap should strongly repel, got {e_overlap}"
        );
    }

    #[test]
    fn cutoff_zeroes_energy() {
        let a = atom(0.0, true, true, true);
        let far = atom(8.1, true, true, true);
        assert_eq!(pair_energy(&a, &far), 0.0);
        let near = atom(7.9, true, true, true);
        assert!(pair_energy(&a, &near).abs() > 0.0);
    }

    #[test]
    fn hydrophobic_term_requires_both() {
        let d = 3.8 + 0.3; // d = 0.3, inside the hydrophobic ramp
        let hh = pair_terms(&atom(0.0, true, false, false), &atom(d, true, false, false));
        let hp = pair_terms(
            &atom(0.0, true, false, false),
            &atom(d, false, false, false),
        );
        assert!(hh.hydrophobic > 0.0);
        assert_eq!(hp.hydrophobic, 0.0);
    }

    #[test]
    fn hbond_term_requires_complementary_pair() {
        let x = 3.8 - 0.3; // d = -0.3, partial H-bond ramp
        let da = pair_terms(&atom(0.0, false, true, false), &atom(x, false, false, true));
        let dd = pair_terms(&atom(0.0, false, true, false), &atom(x, false, true, false));
        assert!(da.hbond > 0.0 && da.hbond < 1.0);
        assert_eq!(dd.hbond, 0.0);
        // Full strength below -0.7.
        let tight = pair_terms(
            &atom(0.0, false, true, false),
            &atom(2.9, false, false, true),
        );
        assert_eq!(tight.hbond, 1.0);
    }

    #[test]
    fn gauss_terms_peak_at_expected_distances() {
        let probe = |sep: f64| {
            pair_terms(
                &atom(0.0, false, false, false),
                &atom(sep, false, false, false),
            )
        };
        // gauss1 peaks at d=0 (sep = 3.8).
        assert!(probe(3.8).gauss1 > probe(4.3).gauss1);
        assert!(probe(3.8).gauss1 > probe(3.3).gauss1);
        // gauss2 peaks at d=3 (sep = 6.8).
        assert!(probe(6.8).gauss2 > probe(5.8).gauss2);
        assert!(probe(6.8).gauss2 > probe(7.8).gauss2);
    }

    #[test]
    fn affinity_divides_by_rotor_penalty() {
        let e = -7.0;
        assert!((affinity(e, 0) - e).abs() < 1e-12);
        let a5 = affinity(e, 5);
        assert!(a5 > e, "penalty should shrink magnitude");
        assert!((a5 - e / (1.0 + 0.05846 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn intermolecular_sums_pairs() {
        let lig = vec![atom(0.0, true, false, false), atom(1.5, true, false, false)];
        let rec = vec![atom(5.0, true, false, false)];
        let total = intermolecular(&lig, &rec);
        let manual = pair_energy(&lig[0], &rec[0]) + pair_energy(&lig[1], &rec[0]);
        assert!((total - manual).abs() < 1e-12);
    }
}
