//! Vina-style atom typing for receptors and ligands.

use qdb_mol::element::Element;
use qdb_mol::geometry::Vec3;
use qdb_mol::ligand::Ligand;
use qdb_mol::structure::Structure;

/// An atom prepared for scoring: position plus the Vina-relevant traits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TypedAtom {
    /// Position (Å).
    pub pos: Vec3,
    /// Vina atom radius (Å) — note these differ from Bondi vdW radii.
    pub radius: f64,
    /// Participates in the hydrophobic term.
    pub hydrophobic: bool,
    /// Hydrogen-bond donor.
    pub donor: bool,
    /// Hydrogen-bond acceptor.
    pub acceptor: bool,
}

impl TypedAtom {
    /// The scoring "class" of an atom — everything except its position.
    /// Atoms in the same class share precomputed grids.
    pub fn class(&self) -> AtomClass {
        AtomClass {
            radius_centi: (self.radius * 100.0).round() as u32,
            hydrophobic: self.hydrophobic,
            donor: self.donor,
            acceptor: self.acceptor,
        }
    }
}

/// Hashable scoring class (see [`TypedAtom::class`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AtomClass {
    /// Radius in centi-Å (exact for table radii).
    pub radius_centi: u32,
    /// Hydrophobic flag.
    pub hydrophobic: bool,
    /// Donor flag.
    pub donor: bool,
    /// Acceptor flag.
    pub acceptor: bool,
}

impl AtomClass {
    /// Radius in Å.
    pub fn radius(&self) -> f64 {
        self.radius_centi as f64 / 100.0
    }
}

/// Vina's per-element radii (united-atom; hydrogens are implicit).
pub fn vina_radius(element: Element) -> f64 {
    match element {
        Element::C => 1.9,
        Element::N => 1.8,
        Element::O => 1.7,
        Element::S => 2.0,
        Element::P => 2.1,
        Element::F => 1.5,
        Element::Cl => 1.8,
        Element::Br => 2.0,
        Element::I => 2.2,
        Element::H => 1.0,
    }
}

/// Types every heavy atom of a receptor structure.
///
/// Heuristics follow AutoDockTools' united-atom assignment: carbons are
/// hydrophobic; backbone N is a donor; backbone/carbonyl O are acceptors;
/// side-chain polar tips (`OG`/`NG` from the peptide builder, or any
/// O/N side-chain atom) are donor+acceptor.
pub fn type_receptor(receptor: &Structure) -> Vec<TypedAtom> {
    let mut out = Vec::with_capacity(receptor.num_atoms());
    for residue in &receptor.residues {
        for atom in &residue.atoms {
            if atom.element == Element::H {
                continue;
            }
            let radius = vina_radius(atom.element);
            let (hydrophobic, donor, acceptor) = match atom.element {
                Element::C => (true, false, false),
                Element::N => {
                    if atom.name == "N" {
                        (false, true, false) // backbone amide
                    } else {
                        (false, true, true) // side-chain N
                    }
                }
                Element::O => {
                    if atom.name == "O" {
                        (false, false, true) // carbonyl
                    } else {
                        (false, true, true) // hydroxyl-like
                    }
                }
                Element::S => (true, false, false),
                _ => (false, false, false),
            };
            out.push(TypedAtom {
                pos: atom.pos,
                radius,
                hydrophobic,
                donor,
                acceptor,
            });
        }
    }
    out
}

/// Types every atom of a ligand (flags carried from generation).
pub fn type_ligand(ligand: &Ligand) -> Vec<TypedAtom> {
    ligand
        .atoms
        .iter()
        .map(|a| TypedAtom {
            pos: a.pos,
            radius: vina_radius(a.element),
            hydrophobic: matches!(a.element, Element::C | Element::S),
            donor: a.donor,
            acceptor: a.acceptor,
        })
        .collect()
}

/// Re-types a ligand at new positions (same order as `type_ligand`).
pub fn retype_positions(template: &[TypedAtom], positions: &[Vec3]) -> Vec<TypedAtom> {
    debug_assert_eq!(template.len(), positions.len());
    template
        .iter()
        .zip(positions)
        .map(|(t, &pos)| TypedAtom { pos, ..*t })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
    use qdb_mol::ligand::generate_ligand;

    fn toy_receptor() -> Structure {
        let s = 3.8 / (3.0f64).sqrt();
        let trace: Vec<Vec3> = (0..4)
            .scan(Vec3::ZERO, |p, i| {
                let out = *p;
                let d = if i % 2 == 0 {
                    Vec3::new(1.0, 1.0, 1.0)
                } else {
                    Vec3::new(-1.0, 1.0, 1.0)
                };
                *p += d * s;
                Some(out)
            })
            .collect();
        let specs: Vec<ResidueSpec> = "LKDS"
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "UNK".into(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        build_peptide(&trace, &specs)
    }

    #[test]
    fn receptor_typing_covers_all_heavy_atoms() {
        let r = toy_receptor();
        let typed = type_receptor(&r);
        assert_eq!(
            typed.len(),
            r.num_atoms(),
            "no hydrogens in the builder output"
        );
        assert!(typed.iter().any(|a| a.hydrophobic), "carbons present");
        assert!(typed.iter().any(|a| a.donor), "backbone N present");
        assert!(typed.iter().any(|a| a.acceptor), "carbonyl O present");
    }

    #[test]
    fn ligand_typing_preserves_flags() {
        let l = generate_ligand(9, 16);
        let typed = type_ligand(&l);
        assert_eq!(typed.len(), l.num_atoms());
        for (t, a) in typed.iter().zip(&l.atoms) {
            assert_eq!(t.donor, a.donor);
            assert_eq!(t.acceptor, a.acceptor);
            assert_eq!(t.radius, vina_radius(a.element));
        }
    }

    #[test]
    fn class_groups_by_traits() {
        let a = TypedAtom {
            pos: Vec3::ZERO,
            radius: 1.9,
            hydrophobic: true,
            donor: false,
            acceptor: false,
        };
        let b = TypedAtom {
            pos: Vec3::new(1.0, 0.0, 0.0),
            ..a
        };
        assert_eq!(a.class(), b.class());
        let c = TypedAtom { radius: 1.8, ..a };
        assert_ne!(a.class(), c.class());
        assert!((c.class().radius() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn retype_moves_positions_only() {
        let l = generate_ligand(4, 12);
        let typed = type_ligand(&l);
        let moved: Vec<Vec3> = l
            .positions()
            .iter()
            .map(|&p| p + Vec3::new(1.0, 2.0, 3.0))
            .collect();
        let retyped = retype_positions(&typed, &moved);
        for (a, b) in typed.iter().zip(&retyped) {
            assert_eq!(a.radius, b.radius);
            assert!((b.pos - a.pos - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-12);
        }
    }
}
