//! Pose clustering and inter-pose RMSD bounds.
//!
//! Vina reports each pose's `RMSD l.b.` and `RMSD u.b.` relative to the
//! best pose: the upper bound is the identity-mapping RMSD; the lower
//! bound allows each atom to match the *nearest* atom of the other pose
//! (symmetry-tolerant). Table 4 of the paper compares exactly these
//! statistics between QDockBank and AlphaFold3 receptors.

use qdb_mol::geometry::Vec3;

/// Identity-mapping RMSD between two equal-length poses.
pub fn rmsd_upper_bound(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "pose size mismatch");
    assert!(!a.is_empty());
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sq()).sum();
    (ss / a.len() as f64).sqrt()
}

/// Nearest-atom-matching RMSD (symmetrized): for each atom of `a` take the
/// closest atom of `b` and vice versa, averaging both directions.
pub fn rmsd_lower_bound(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    let dir = |from: &[Vec3], to: &[Vec3]| -> f64 {
        from.iter()
            .map(|x| {
                to.iter()
                    .map(|y| (*x - *y).norm_sq())
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / from.len() as f64
    };
    (0.5 * (dir(a, b) + dir(b, a))).sqrt()
}

/// A docking pose with its score.
#[derive(Clone, Debug)]
pub struct ScoredPose {
    /// Ligand atom positions.
    pub coords: Vec<Vec3>,
    /// Reported affinity (kcal/mol).
    pub affinity: f64,
    /// RMSD lower bound vs the run's best pose (filled by clustering).
    pub rmsd_lb: f64,
    /// RMSD upper bound vs the run's best pose.
    pub rmsd_ub: f64,
}

/// True when every atom of `a` is within `eps` of its counterpart in `b`
/// (which implies RMSD ≤ `eps`). Bails at the first atom that moved, so
/// distinct poses — the common case — cost one subtraction.
fn within_epsilon(a: &[Vec3], b: &[Vec3], eps_sq: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).norm_sq() <= eps_sq)
}

/// Max per-atom displacement treated as "the same pose" by the cheap
/// pre-dedup pass. Far below any sensible cluster radius, so the pass
/// only removes poses clustering would have removed anyway.
const DEDUP_EPSILON: f64 = 0.05;

/// Deduplicates poses: keeps the best-scoring representative of every
/// cluster (clusters = poses within `min_rmsd` u.b. of a kept pose),
/// sorts by affinity, truncates to `max_poses`, and fills the lb/ub
/// columns relative to the top pose.
///
/// Poses with a non-finite affinity are dropped up front (counted in
/// `dock.nonfinite_poses`) — a NaN score must never rank, let alone rank
/// arbitrarily. Ranking uses `total_cmp`, so the ordering is total even
/// if a new scoring term misbehaves.
pub fn cluster_poses(
    candidates: Vec<(Vec<Vec3>, f64)>,
    min_rmsd: f64,
    max_poses: usize,
) -> Vec<ScoredPose> {
    let telemetry = qdb_telemetry::global();
    let before = candidates.len();
    let mut candidates: Vec<(Vec<Vec3>, f64)> = candidates
        .into_iter()
        .filter(|(_, affinity)| affinity.is_finite())
        .collect();
    let nonfinite = (before - candidates.len()) as u64;
    if nonfinite > 0 {
        telemetry.counter("dock.nonfinite_poses").add(nonfinite);
    }
    candidates.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Cheap epsilon pre-dedup: MC chains revisit the same minimum many
    // times, and those byte-near-identical poses would each pay a full
    // RMSD pass against the kept list below. Sorted order means the first
    // representative seen is the best-scoring one.
    let eps = DEDUP_EPSILON.min(min_rmsd * 0.5);
    if eps > 0.0 {
        let eps_sq = eps * eps;
        let mut unique: Vec<(Vec<Vec3>, f64)> = Vec::with_capacity(candidates.len());
        for (coords, affinity) in candidates {
            if !unique
                .iter()
                .any(|(uc, _)| within_epsilon(uc, &coords, eps_sq))
            {
                unique.push((coords, affinity));
            }
        }
        let removed = before as u64 - nonfinite - unique.len() as u64;
        if removed > 0 {
            telemetry.counter("dock.poses_deduped").add(removed);
        }
        candidates = unique;
    }

    let mut kept: Vec<(Vec<Vec3>, f64)> = Vec::with_capacity(max_poses.min(candidates.len()));
    for (coords, affinity) in candidates {
        let dup = kept
            .iter()
            .any(|(kc, _)| rmsd_upper_bound(kc, &coords) < min_rmsd);
        if !dup {
            kept.push((coords, affinity));
            if kept.len() == max_poses {
                break;
            }
        }
    }
    let best = kept.first().map(|(c, _)| c.clone());
    kept.into_iter()
        .map(|(coords, affinity)| {
            let (lb, ub) = match &best {
                Some(b) => (rmsd_lower_bound(b, &coords), rmsd_upper_bound(b, &coords)),
                None => (0.0, 0.0),
            };
            ScoredPose {
                coords,
                affinity,
                rmsd_lb: lb,
                rmsd_ub: ub,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pose(shift: f64) -> Vec<Vec3> {
        (0..5)
            .map(|i| Vec3::new(i as f64 * 1.5 + shift, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn bounds_ordering() {
        let a = pose(0.0);
        let b = pose(0.8);
        let lb = rmsd_lower_bound(&a, &b);
        let ub = rmsd_upper_bound(&a, &b);
        assert!(lb <= ub + 1e-12, "lb {lb} must not exceed ub {ub}");
        assert!(ub > 0.0);
    }

    #[test]
    fn lower_bound_forgives_permutation() {
        let a = pose(0.0);
        let mut b = a.clone();
        b.reverse(); // same atom cloud, different order
        assert!(
            rmsd_upper_bound(&a, &b) > 1.0,
            "identity mapping sees a big change"
        );
        assert!(
            rmsd_lower_bound(&a, &b) < 1e-9,
            "nearest matching sees none"
        );
    }

    #[test]
    fn identical_poses_zero() {
        let a = pose(1.0);
        assert_eq!(rmsd_upper_bound(&a, &a), 0.0);
        assert_eq!(rmsd_lower_bound(&a, &a), 0.0);
    }

    #[test]
    fn clustering_dedupes_and_sorts() {
        let candidates = vec![
            (pose(0.0), -5.0),
            (pose(0.05), -4.9), // duplicate of the first (rmsd 0.05)
            (pose(3.0), -4.0),
            (pose(6.0), -3.0),
            (pose(6.02), -2.9), // duplicate
        ];
        let out = cluster_poses(candidates, 1.0, 10);
        assert_eq!(out.len(), 3, "two duplicates removed");
        assert_eq!(out[0].affinity, -5.0);
        assert!(out.windows(2).all(|w| w[0].affinity <= w[1].affinity));
        // Best pose has zero self-RMSD.
        assert_eq!(out[0].rmsd_lb, 0.0);
        assert_eq!(out[0].rmsd_ub, 0.0);
        assert!(out[1].rmsd_ub > 0.0);
    }

    #[test]
    fn non_finite_scores_are_dropped_not_ranked() {
        let candidates = vec![
            (pose(0.0), f64::NAN),
            (pose(3.0), -4.0),
            (pose(6.0), f64::INFINITY),
            (pose(9.0), -6.0),
            (pose(12.0), f64::NEG_INFINITY),
        ];
        let out = cluster_poses(candidates, 1.0, 10);
        assert_eq!(out.len(), 2, "only the finite poses survive");
        assert_eq!(out[0].affinity, -6.0);
        assert_eq!(out[1].affinity, -4.0);
        assert!(out.iter().all(|p| p.affinity.is_finite()));
    }

    #[test]
    fn all_nan_input_yields_no_poses_instead_of_panicking() {
        let candidates = vec![(pose(0.0), f64::NAN), (pose(3.0), f64::NAN)];
        assert!(cluster_poses(candidates, 1.0, 10).is_empty());
    }

    #[test]
    fn epsilon_dedup_keeps_the_best_representative() {
        // Three byte-near-identical poses plus one distinct: the epsilon
        // pass collapses the near-identicals to their best-scoring member.
        let candidates = vec![
            (pose(0.0), -5.0),
            (pose(0.004), -4.99),
            (pose(0.008), -4.98),
            (pose(9.0), -3.0),
        ];
        let out = cluster_poses(candidates, 1.0, 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].affinity, -5.0);
        assert_eq!(out[1].affinity, -3.0);
    }

    #[test]
    fn clustering_truncates() {
        let candidates: Vec<(Vec<Vec3>, f64)> = (0..20)
            .map(|i| (pose(i as f64 * 2.0), -(i as f64)))
            .collect();
        let out = cluster_poses(candidates, 0.5, 7);
        assert_eq!(out.len(), 7);
    }
}
