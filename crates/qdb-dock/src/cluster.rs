//! Pose clustering and inter-pose RMSD bounds.
//!
//! Vina reports each pose's `RMSD l.b.` and `RMSD u.b.` relative to the
//! best pose: the upper bound is the identity-mapping RMSD; the lower
//! bound allows each atom to match the *nearest* atom of the other pose
//! (symmetry-tolerant). Table 4 of the paper compares exactly these
//! statistics between QDockBank and AlphaFold3 receptors.

use qdb_mol::geometry::Vec3;

/// Identity-mapping RMSD between two equal-length poses.
pub fn rmsd_upper_bound(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "pose size mismatch");
    assert!(!a.is_empty());
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sq()).sum();
    (ss / a.len() as f64).sqrt()
}

/// Nearest-atom-matching RMSD (symmetrized): for each atom of `a` take the
/// closest atom of `b` and vice versa, averaging both directions.
pub fn rmsd_lower_bound(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    let dir = |from: &[Vec3], to: &[Vec3]| -> f64 {
        from.iter()
            .map(|x| {
                to.iter()
                    .map(|y| (*x - *y).norm_sq())
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / from.len() as f64
    };
    (0.5 * (dir(a, b) + dir(b, a))).sqrt()
}

/// A docking pose with its score.
#[derive(Clone, Debug)]
pub struct ScoredPose {
    /// Ligand atom positions.
    pub coords: Vec<Vec3>,
    /// Reported affinity (kcal/mol).
    pub affinity: f64,
    /// RMSD lower bound vs the run's best pose (filled by clustering).
    pub rmsd_lb: f64,
    /// RMSD upper bound vs the run's best pose.
    pub rmsd_ub: f64,
}

/// Deduplicates poses: keeps the best-scoring representative of every
/// cluster (clusters = poses within `min_rmsd` u.b. of a kept pose),
/// sorts by affinity, truncates to `max_poses`, and fills the lb/ub
/// columns relative to the top pose.
pub fn cluster_poses(
    mut candidates: Vec<(Vec<Vec3>, f64)>,
    min_rmsd: f64,
    max_poses: usize,
) -> Vec<ScoredPose> {
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut kept: Vec<(Vec<Vec3>, f64)> = Vec::new();
    for (coords, affinity) in candidates {
        let dup = kept
            .iter()
            .any(|(kc, _)| rmsd_upper_bound(kc, &coords) < min_rmsd);
        if !dup {
            kept.push((coords, affinity));
            if kept.len() == max_poses {
                break;
            }
        }
    }
    let best = kept.first().map(|(c, _)| c.clone());
    kept.into_iter()
        .map(|(coords, affinity)| {
            let (lb, ub) = match &best {
                Some(b) => (rmsd_lower_bound(b, &coords), rmsd_upper_bound(b, &coords)),
                None => (0.0, 0.0),
            };
            ScoredPose {
                coords,
                affinity,
                rmsd_lb: lb,
                rmsd_ub: ub,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pose(shift: f64) -> Vec<Vec3> {
        (0..5)
            .map(|i| Vec3::new(i as f64 * 1.5 + shift, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn bounds_ordering() {
        let a = pose(0.0);
        let b = pose(0.8);
        let lb = rmsd_lower_bound(&a, &b);
        let ub = rmsd_upper_bound(&a, &b);
        assert!(lb <= ub + 1e-12, "lb {lb} must not exceed ub {ub}");
        assert!(ub > 0.0);
    }

    #[test]
    fn lower_bound_forgives_permutation() {
        let a = pose(0.0);
        let mut b = a.clone();
        b.reverse(); // same atom cloud, different order
        assert!(
            rmsd_upper_bound(&a, &b) > 1.0,
            "identity mapping sees a big change"
        );
        assert!(
            rmsd_lower_bound(&a, &b) < 1e-9,
            "nearest matching sees none"
        );
    }

    #[test]
    fn identical_poses_zero() {
        let a = pose(1.0);
        assert_eq!(rmsd_upper_bound(&a, &a), 0.0);
        assert_eq!(rmsd_lower_bound(&a, &a), 0.0);
    }

    #[test]
    fn clustering_dedupes_and_sorts() {
        let candidates = vec![
            (pose(0.0), -5.0),
            (pose(0.05), -4.9), // duplicate of the first (rmsd 0.05)
            (pose(3.0), -4.0),
            (pose(6.0), -3.0),
            (pose(6.02), -2.9), // duplicate
        ];
        let out = cluster_poses(candidates, 1.0, 10);
        assert_eq!(out.len(), 3, "two duplicates removed");
        assert_eq!(out[0].affinity, -5.0);
        assert!(out.windows(2).all(|w| w[0].affinity <= w[1].affinity));
        // Best pose has zero self-RMSD.
        assert_eq!(out[0].rmsd_lb, 0.0);
        assert_eq!(out[0].rmsd_ub, 0.0);
        assert!(out[1].rmsd_ub > 0.0);
    }

    #[test]
    fn clustering_truncates() {
        let candidates: Vec<(Vec<Vec3>, f64)> = (0..20)
            .map(|i| (pose(i as f64 * 2.0), -(i as f64)))
            .collect();
        let out = cluster_poses(candidates, 0.5, 7);
        assert_eq!(out.len(), 7);
    }
}
