//! Ligand pose parameterization: rigid-body + torsions.

use qdb_mol::geometry::{Quat, Vec3};
use qdb_mol::ligand::Ligand;

/// A ligand pose: rotation about the ligand's own centroid, then
/// translation of the centroid to `position`, after applying `torsions`.
#[derive(Clone, Debug, PartialEq)]
pub struct Pose {
    /// Target centroid position.
    pub position: Vec3,
    /// Rigid-body orientation.
    pub orientation: Quat,
    /// Torsion angles (radians), one per rotatable bond.
    pub torsions: Vec<f64>,
}

impl Pose {
    /// The identity pose at a given position.
    pub fn at(position: Vec3, num_torsions: usize) -> Pose {
        Pose {
            position,
            orientation: Quat::IDENTITY,
            torsions: vec![0.0; num_torsions],
        }
    }

    /// Total degrees of freedom (3 translation + 3 rotation + torsions).
    pub fn dof(&self) -> usize {
        6 + self.torsions.len()
    }

    /// Applies the pose to a template ligand, returning atom positions.
    pub fn apply(&self, template: &Ligand) -> Vec<Vec3> {
        // Torsions first (internal coordinates), then rigid placement.
        let mut lig = template.clone();
        for (i, &angle) in self.torsions.iter().enumerate() {
            if angle != 0.0 {
                lig.apply_torsion(i, angle);
            }
        }
        let centroid = lig.centroid();
        lig.atoms
            .iter()
            .map(|a| self.orientation.rotate(a.pos - centroid) + self.position)
            .collect()
    }

    /// Perturbs the pose along one abstract DOF index:
    /// 0–2 translation axes, 3–5 rotation axes, 6+ torsions.
    pub fn nudge(&self, dof: usize, delta: f64) -> Pose {
        let mut out = self.clone();
        match dof {
            0 => out.position.x += delta,
            1 => out.position.y += delta,
            2 => out.position.z += delta,
            3..=5 => {
                let axis = match dof {
                    3 => Vec3::new(1.0, 0.0, 0.0),
                    4 => Vec3::new(0.0, 1.0, 0.0),
                    _ => Vec3::new(0.0, 0.0, 1.0),
                };
                out.orientation = Quat::from_axis_angle(axis, delta).mul(out.orientation);
            }
            _ => {
                let t = dof - 6;
                assert!(t < out.torsions.len(), "DOF {dof} out of range");
                out.torsions[t] += delta;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_mol::ligand::generate_ligand;

    #[test]
    fn identity_pose_recenters_ligand() {
        let lig = generate_ligand(11, 14);
        let target = Vec3::new(5.0, -2.0, 1.0);
        let pose = Pose::at(target, lig.num_rotatable());
        let coords = pose.apply(&lig);
        let centroid = coords
            .iter()
            .fold(Vec3::ZERO, |acc, &p| acc + p / coords.len() as f64);
        assert!((centroid - target).norm() < 1e-9);
    }

    #[test]
    fn rigid_motion_preserves_internal_distances() {
        let lig = generate_ligand(3, 16);
        let mut pose = Pose::at(Vec3::new(1.0, 2.0, 3.0), lig.num_rotatable());
        pose.orientation = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.3), 0.9);
        let coords = pose.apply(&lig);
        let orig = lig.positions();
        for i in 0..orig.len() {
            for j in (i + 1)..orig.len() {
                let d0 = orig[i].distance(orig[j]);
                let d1 = coords[i].distance(coords[j]);
                assert!((d0 - d1).abs() < 1e-9, "rigid body must preserve distances");
            }
        }
    }

    #[test]
    fn torsion_changes_internal_geometry() {
        let lig = generate_ligand(8, 18);
        if lig.num_rotatable() == 0 {
            return;
        }
        let base = Pose::at(Vec3::ZERO, lig.num_rotatable());
        let mut twisted = base.clone();
        twisted.torsions[0] = 1.2;
        let a = base.apply(&lig);
        let b = twisted.apply(&lig);
        let moved = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| (**x - **y).norm() > 1e-6)
            .count();
        assert!(moved > 0, "torsion must move some atoms");
    }

    #[test]
    fn nudge_covers_all_dof() {
        let lig = generate_ligand(21, 15);
        let pose = Pose::at(Vec3::ZERO, lig.num_rotatable());
        for dof in 0..pose.dof() {
            let nudged = pose.nudge(dof, 0.3);
            assert_ne!(
                nudged.apply(&lig),
                pose.apply(&lig),
                "DOF {dof} had no effect"
            );
        }
    }
}
