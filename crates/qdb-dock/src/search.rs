//! Monte-Carlo conformational search (Vina's global optimizer).
//!
//! Each chain: random initial pose in the box, then iterated
//! mutate-refine-Metropolis steps at constant temperature. Every accepted
//! pose is recorded as a candidate; the engine clusters candidates from
//! all chains into the final ranked pose list.

use crate::local::refine;
use crate::pose::Pose;
use qdb_mol::geometry::{Quat, Vec3};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Search hyper-parameters for one chain.
#[derive(Clone, Copy, Debug)]
pub struct SearchParams {
    /// Box center.
    pub center: Vec3,
    /// Box edge lengths.
    pub box_size: Vec3,
    /// Monte-Carlo steps per chain.
    pub steps: usize,
    /// Objective evaluations allowed per local refinement.
    pub refine_evals: usize,
    /// Metropolis temperature (kcal/mol).
    pub temperature: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            center: Vec3::ZERO,
            box_size: Vec3::new(22.0, 22.0, 22.0),
            steps: 60,
            refine_evals: 120,
            temperature: 1.2,
        }
    }
}

/// Draws a uniformly random unit quaternion.
fn random_orientation<R: Rng>(rng: &mut R) -> Quat {
    // Shoemake's method.
    let u1: f64 = rng.gen();
    let u2: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let u3: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let a = (1.0 - u1).sqrt();
    let b = u1.sqrt();
    Quat::from_components(a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos())
}

/// Random pose inside the (slightly shrunk) box.
pub fn random_pose<R: Rng>(params: &SearchParams, num_torsions: usize, rng: &mut R) -> Pose {
    let half = params.box_size * 0.35; // keep the ligand centroid inside
    let position = params.center
        + Vec3::new(
            rng.gen_range(-half.x..half.x),
            rng.gen_range(-half.y..half.y),
            rng.gen_range(-half.z..half.z),
        );
    Pose {
        position,
        orientation: random_orientation(rng),
        torsions: (0..num_torsions)
            .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
            .collect(),
    }
}

/// Mutates one random DOF (Vina-style move set).
fn mutate<R: Rng>(pose: &Pose, rng: &mut R) -> Pose {
    let dof = pose.dof();
    let which = rng.gen_range(0..dof);
    let delta = if which < 3 {
        rng.gen_range(-1.5..1.5) // Å
    } else {
        rng.gen_range(-0.8..0.8) // rad
    };
    pose.nudge(which, delta)
}

/// Runs one Monte-Carlo chain; returns all accepted `(pose, energy)`
/// candidates in visit order.
pub fn mc_chain<F: FnMut(&Pose) -> f64>(
    params: &SearchParams,
    num_torsions: usize,
    mut energy: F,
    rng: &mut ChaCha8Rng,
) -> Vec<(Pose, f64)> {
    let start = random_pose(params, num_torsions, rng);
    let (mut current, mut current_e) = refine(&start, &mut energy, params.refine_evals);
    // At most one acceptance per step plus the start pose; pre-sizing
    // keeps the hot loop free of reallocation.
    let mut accepted = Vec::with_capacity(params.steps + 1);
    accepted.push((current.clone(), current_e));

    for _ in 0..params.steps {
        let proposal = mutate(&current, rng);
        let (candidate, cand_e) = refine(&proposal, &mut energy, params.refine_evals);
        let accept = cand_e <= current_e
            || rng.gen::<f64>() < ((current_e - cand_e) / params.temperature).exp();
        if accept {
            current = candidate;
            current_e = cand_e;
            accepted.push((current.clone(), current_e));
        }
    }
    accepted
}

/// Runs one *local* chain (Vina's `local_only` protocol): start at the
/// ligand's input pose (identity orientation at `native_center`) with a
/// small seeded perturbation, then refine and take a few conservative MC
/// steps. Used to rescore a known binding pose against a receptor.
pub fn local_chain<F: FnMut(&Pose) -> f64>(
    params: &SearchParams,
    native_center: Vec3,
    num_torsions: usize,
    mut energy: F,
    rng: &mut ChaCha8Rng,
) -> Vec<(Pose, f64)> {
    let mut start = Pose::at(native_center, num_torsions);
    // Small perturbation: jitter the native pose like Vina's multiple
    // local_only runs do via their input randomization.
    start.position += Vec3::new(
        rng.gen_range(-0.4..0.4),
        rng.gen_range(-0.4..0.4),
        rng.gen_range(-0.4..0.4),
    );
    for d in 3..start.dof() {
        start = start.nudge(d, rng.gen_range(-0.15..0.15));
    }
    let (mut current, mut current_e) = refine(&start, &mut energy, params.refine_evals);
    let walk_steps = params.steps.min(12);
    let mut accepted = Vec::with_capacity(walk_steps + 1);
    accepted.push((current.clone(), current_e));
    // A short conservative walk to sample pose variability around the
    // native site (feeds the lb/ub RMSD statistics).
    for _ in 0..walk_steps {
        let dof = current.dof();
        let which = rng.gen_range(0..dof);
        let delta = if which < 3 {
            rng.gen_range(-0.5..0.5)
        } else {
            rng.gen_range(-0.3..0.3)
        };
        let proposal = current.nudge(which, delta);
        let (candidate, cand_e) = refine(&proposal, &mut energy, params.refine_evals / 2);
        let accept = cand_e <= current_e
            || rng.gen::<f64>() < ((current_e - cand_e) / params.temperature).exp();
        if accept {
            current = candidate;
            current_e = cand_e;
            accepted.push((current.clone(), current_e));
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_poses_stay_in_box() {
        let params = SearchParams {
            center: Vec3::new(10.0, 0.0, -5.0),
            box_size: Vec3::new(20.0, 20.0, 20.0),
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let p = random_pose(&params, 3, &mut rng);
            let rel = p.position - params.center;
            assert!(rel.x.abs() <= 10.0 && rel.y.abs() <= 10.0 && rel.z.abs() <= 10.0);
            assert_eq!(p.torsions.len(), 3);
        }
    }

    #[test]
    fn random_orientations_are_unit() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            let q = random_orientation(&mut rng);
            let n = q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z;
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_descends_toward_minimum() {
        // Simple bowl: energy = distance² to a target inside the box.
        let target = Vec3::new(2.0, -3.0, 1.0);
        let params = SearchParams {
            steps: 30,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let accepted = mc_chain(&params, 0, |p| (p.position - target).norm_sq(), &mut rng);
        let best = accepted
            .iter()
            .map(|(_, e)| *e)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < 0.5,
            "chain should find the bowl minimum, best {best}"
        );
    }

    #[test]
    fn chain_is_seed_deterministic() {
        let params = SearchParams {
            steps: 10,
            ..Default::default()
        };
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            mc_chain(
                &params,
                1,
                |p| p.position.norm_sq() + p.torsions[0].powi(2),
                &mut rng,
            )
            .last()
            .map(|(_, e)| *e)
            .unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
