//! Precomputed receptor affinity grids with trilinear interpolation.
//!
//! Like AutoDock Vina, the engine precomputes — per ligand *atom class* —
//! the receptor interaction energy on a regular grid over the search box,
//! then evaluates poses by interpolation. Grid construction is
//! rayon-parallel over z-slabs; lookups outside the box fall back to the
//! direct pairwise sum (plus a soft wall that pushes the search back into
//! the box).

use crate::scoring::{pair_energy, CUTOFF};
use crate::types::{AtomClass, TypedAtom};
use qdb_mol::geometry::Vec3;
use rayon::prelude::*;
use std::collections::HashMap;

/// Default grid spacing (Å) — Vina's value.
pub const DEFAULT_SPACING: f64 = 0.375;

/// One scalar field over the box for a single atom class.
#[derive(Clone, Debug)]
struct Field {
    values: Vec<f64>,
}

/// The set of per-class receptor grids over a search box.
#[derive(Clone, Debug)]
pub struct GridMaps {
    origin: Vec3,
    spacing: f64,
    nx: usize,
    ny: usize,
    nz: usize,
    fields: HashMap<AtomClass, Field>,
    /// Receptor atoms kept for out-of-box fallback.
    receptor: Vec<TypedAtom>,
}

impl GridMaps {
    /// Builds grids for every class in `classes` over the box centered at
    /// `center` with edge lengths `size`, padded by the scoring cutoff.
    pub fn build(
        receptor: &[TypedAtom],
        classes: &[AtomClass],
        center: Vec3,
        size: Vec3,
        spacing: f64,
    ) -> GridMaps {
        assert!(spacing > 0.0);
        let half = size / 2.0;
        let origin = center - half;
        let nx = (size.x / spacing).ceil() as usize + 1;
        let ny = (size.y / spacing).ceil() as usize + 1;
        let nz = (size.z / spacing).ceil() as usize + 1;

        let mut fields = HashMap::new();
        for &class in classes {
            if fields.contains_key(&class) {
                continue;
            }
            let probe_template = TypedAtom {
                pos: Vec3::ZERO,
                radius: class.radius(),
                hydrophobic: class.hydrophobic,
                donor: class.donor,
                acceptor: class.acceptor,
            };
            // Parallel over z-slabs.
            let values: Vec<f64> = (0..nz)
                .into_par_iter()
                .flat_map_iter(|iz| {
                    let receptor = receptor.to_vec();
                    (0..ny).flat_map(move |iy| {
                        let receptor = receptor.clone();
                        (0..nx).map(move |ix| {
                            let pos = Vec3::new(
                                origin.x + ix as f64 * spacing,
                                origin.y + iy as f64 * spacing,
                                origin.z + iz as f64 * spacing,
                            );
                            let probe = TypedAtom {
                                pos,
                                ..probe_template
                            };
                            receptor
                                .iter()
                                .filter(|r| r.pos.distance(pos) <= CUTOFF)
                                .map(|r| pair_energy(&probe, r))
                                .sum::<f64>()
                        })
                    })
                })
                .collect();
            fields.insert(class, Field { values });
        }
        GridMaps {
            origin,
            spacing,
            nx,
            ny,
            nz,
            fields,
            receptor: receptor.to_vec(),
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// True when `pos` lies inside the interpolation volume.
    pub fn contains(&self, pos: Vec3) -> bool {
        let rel = pos - self.origin;
        let max_x = (self.nx - 1) as f64 * self.spacing;
        let max_y = (self.ny - 1) as f64 * self.spacing;
        let max_z = (self.nz - 1) as f64 * self.spacing;
        rel.x >= 0.0
            && rel.y >= 0.0
            && rel.z >= 0.0
            && rel.x <= max_x
            && rel.y <= max_y
            && rel.z <= max_z
    }

    #[inline]
    fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.ny + iy) * self.nx + ix
    }

    /// Interpolated energy of an atom of `class` at `pos`; atoms outside
    /// the box are scored directly against the receptor plus a quadratic
    /// wall steering the search back inside.
    pub fn energy_at(&self, class: AtomClass, pos: Vec3) -> f64 {
        if !self.contains(pos) {
            let probe = TypedAtom {
                pos,
                radius: class.radius(),
                hydrophobic: class.hydrophobic,
                donor: class.donor,
                acceptor: class.acceptor,
            };
            let direct: f64 = self.receptor.iter().map(|r| pair_energy(&probe, r)).sum();
            return direct + self.wall_penalty(pos);
        }
        let field = &self.fields[&class];
        let rel = (pos - self.origin) / self.spacing;
        let (fx, fy, fz) = (rel.x, rel.y, rel.z);
        let ix = (fx.floor() as usize).min(self.nx - 2);
        let iy = (fy.floor() as usize).min(self.ny - 2);
        let iz = (fz.floor() as usize).min(self.nz - 2);
        let (tx, ty, tz) = (fx - ix as f64, fy - iy as f64, fz - iz as f64);
        let mut acc = 0.0;
        for (dz, wz) in [(0usize, 1.0 - tz), (1, tz)] {
            for (dy, wy) in [(0usize, 1.0 - ty), (1, ty)] {
                for (dx, wx) in [(0usize, 1.0 - tx), (1, tx)] {
                    let v = field.values[self.index(ix + dx, iy + dy, iz + dz)];
                    acc += v * wx * wy * wz;
                }
            }
        }
        acc
    }

    fn wall_penalty(&self, pos: Vec3) -> f64 {
        let max = self.origin
            + Vec3::new(
                (self.nx - 1) as f64 * self.spacing,
                (self.ny - 1) as f64 * self.spacing,
                (self.nz - 1) as f64 * self.spacing,
            );
        let mut pen = 0.0;
        for (p, lo, hi) in [
            (pos.x, self.origin.x, max.x),
            (pos.y, self.origin.y, max.y),
            (pos.z, self.origin.z, max.z),
        ] {
            if p < lo {
                pen += (lo - p) * (lo - p);
            } else if p > hi {
                pen += (p - hi) * (p - hi);
            }
        }
        pen
    }

    /// Total grid energy of a ligand pose (per-atom class lookup).
    pub fn ligand_energy(&self, atoms: &[TypedAtom]) -> f64 {
        atoms.iter().map(|a| self.energy_at(a.class(), a.pos)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::intermolecular;

    fn receptor_cluster() -> Vec<TypedAtom> {
        // A little blob of typed atoms around the origin.
        let mk = |x: f64, y: f64, z: f64, h: bool, d: bool, a: bool| TypedAtom {
            pos: Vec3::new(x, y, z),
            radius: 1.9,
            hydrophobic: h,
            donor: d,
            acceptor: a,
        };
        vec![
            mk(0.0, 0.0, 0.0, true, false, false),
            mk(1.5, 1.0, 0.0, false, true, false),
            mk(-1.0, 2.0, 1.0, false, false, true),
            mk(2.0, -1.5, -1.0, true, false, false),
        ]
    }

    fn lig_atom(pos: Vec3) -> TypedAtom {
        TypedAtom {
            pos,
            radius: 1.9,
            hydrophobic: true,
            donor: false,
            acceptor: true,
        }
    }

    #[test]
    fn interpolation_matches_direct_evaluation() {
        let receptor = receptor_cluster();
        let class = lig_atom(Vec3::ZERO).class();
        let grids = GridMaps::build(
            &receptor,
            &[class],
            Vec3::ZERO,
            Vec3::new(16.0, 16.0, 16.0),
            0.25,
        );
        // Probe a few interior points: grid vs direct pairwise.
        for pos in [
            Vec3::new(3.7, 0.2, 0.1),
            Vec3::new(-2.0, 3.0, 1.0),
            Vec3::new(0.5, -4.0, 2.5),
        ] {
            let atom = lig_atom(pos);
            let direct = intermolecular(&[atom], &receptor);
            let via_grid = grids.energy_at(class, pos);
            assert!(
                (direct - via_grid).abs() < 0.05,
                "grid {via_grid} vs direct {direct} at {pos:?}"
            );
        }
    }

    #[test]
    fn outside_box_falls_back_with_wall() {
        let receptor = receptor_cluster();
        let class = lig_atom(Vec3::ZERO).class();
        let grids = GridMaps::build(
            &receptor,
            &[class],
            Vec3::ZERO,
            Vec3::new(8.0, 8.0, 8.0),
            0.5,
        );
        let outside = Vec3::new(10.0, 0.0, 0.0);
        assert!(!grids.contains(outside));
        let e = grids.energy_at(class, outside);
        // Wall adds (10-4)² = 36 on top of the (tiny) direct term.
        assert!(e > 30.0, "wall should dominate, got {e}");
    }

    #[test]
    fn dims_cover_box() {
        let receptor = receptor_cluster();
        let class = lig_atom(Vec3::ZERO).class();
        let grids = GridMaps::build(
            &receptor,
            &[class],
            Vec3::ZERO,
            Vec3::new(12.0, 9.0, 6.0),
            0.75,
        );
        let (nx, ny, nz) = grids.dims();
        assert_eq!(nx, 17);
        assert_eq!(ny, 13);
        assert_eq!(nz, 9);
        assert!(grids.contains(Vec3::new(5.9, 4.4, 2.9)));
        assert!(!grids.contains(Vec3::new(6.8, 0.0, 0.0)));
    }

    #[test]
    fn ligand_energy_sums_atoms() {
        let receptor = receptor_cluster();
        let atoms = vec![
            lig_atom(Vec3::new(3.5, 0.0, 0.0)),
            lig_atom(Vec3::new(0.0, 3.5, 0.5)),
        ];
        let classes: Vec<AtomClass> = atoms.iter().map(|a| a.class()).collect();
        let grids = GridMaps::build(
            &receptor,
            &classes,
            Vec3::ZERO,
            Vec3::new(14.0, 14.0, 14.0),
            0.25,
        );
        let total = grids.ligand_energy(&atoms);
        let manual: f64 = atoms
            .iter()
            .map(|a| grids.energy_at(a.class(), a.pos))
            .sum();
        assert!((total - manual).abs() < 1e-12);
    }
}
