//! The folding Hamiltonian `H = λc·Hc + λg·Hg + λd·Hd + λi·Hi` (§4.3.1).
//!
//! The Hamiltonian is diagonal in the computational basis: every basis
//! state decodes (via [`TurnEncoding`]) to a lattice conformation whose
//! energy is a classical function. VQE therefore only needs the dense
//! diagonal (built in parallel) or per-bitstring evaluation.
//!
//! ## Energy scale
//!
//! The paper reports absolute energies that grow steeply with fragment
//! size (Tables 1–3: ~10 for 5-mers up to ~24,000 for 14-mers) because the
//! authors scale penalty and offset terms with the qubit count. We
//! reproduce that with the calibrated scale
//!
//! `S(q) = 10.4 · (q / 12)^3.6`
//!
//! fit to the `Lowest Energy` column across all ten fragment lengths
//! (q = physical qubits from the Eagle-profile allocation). The
//! *physics* (which conformation is the ground state) is unaffected by the
//! scale — it multiplies every term.

use crate::conformation::{Conformation, EnergyBreakdown, Lambdas};
use crate::encoding::TurnEncoding;
use crate::mj::ContactMatrix;
use crate::sequence::ProteinSequence;
use qdb_quantum::pauli::SparsePauliOp;
use rayon::prelude::*;

/// Absolute energy coefficients applied to the breakdown terms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyScale {
    /// Constant offset added to every conformation (the paper's large
    /// baseline).
    pub offset: f64,
    /// Energy per constraint violation (chirality or overlap).
    pub penalty: f64,
    /// Multiplier on the Miyazawa–Jernigan interaction sum.
    pub interaction: f64,
}

impl EnergyScale {
    /// Unit scale: no offset, penalty 10, interaction 1 — used by tests and
    /// anywhere absolute calibration is irrelevant.
    pub fn unit() -> Self {
        Self {
            offset: 0.0,
            penalty: 10.0,
            interaction: 1.0,
        }
    }

    /// Paper-calibrated scale for a fragment allocated `physical_qubits`
    /// on hardware: `S(q) = 10.4 · (q/12)^3.6`, with penalties at 12% of S
    /// and the interaction signal at 0.5% of S per MJ unit (reproducing the
    /// ≈30–40% optimization energy ranges of Tables 1–3).
    pub fn calibrated(physical_qubits: usize) -> Self {
        let s = 10.4 * (physical_qubits as f64 / 12.0).powf(3.6);
        Self {
            offset: s,
            penalty: 0.12 * s,
            interaction: 0.005 * s,
        }
    }

    /// Applies the scale to a raw breakdown under λ weights.
    pub fn apply(&self, b: &EnergyBreakdown, lambda: &Lambdas) -> f64 {
        self.offset
            + self.penalty * (lambda.chirality * b.chirality + lambda.overlap * b.overlap)
            + self.penalty * lambda.geometry * b.geometry
            + self.interaction * lambda.interaction * b.interaction
    }
}

/// The diagonal folding Hamiltonian of one fragment.
#[derive(Clone, Debug)]
pub struct FoldingHamiltonian {
    seq: ProteinSequence,
    encoding: TurnEncoding,
    lambdas: Lambdas,
    scale: EnergyScale,
}

impl FoldingHamiltonian {
    /// Builds the Hamiltonian with explicit weights and scale.
    pub fn new(seq: ProteinSequence, lambdas: Lambdas, scale: EnergyScale) -> Self {
        let encoding = TurnEncoding::new(seq.len());
        Self {
            seq,
            encoding,
            lambdas,
            scale,
        }
    }

    /// Paper defaults: all λ = 1, unit scale.
    pub fn with_unit_scale(seq: ProteinSequence) -> Self {
        Self::new(seq, Lambdas::default(), EnergyScale::unit())
    }

    /// The sequence being folded.
    pub fn sequence(&self) -> &ProteinSequence {
        &self.seq
    }

    /// The turn encoding.
    pub fn encoding(&self) -> TurnEncoding {
        self.encoding
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.encoding.num_qubits()
    }

    /// λ weights.
    pub fn lambdas(&self) -> &Lambdas {
        &self.lambdas
    }

    /// Energy scale.
    pub fn scale(&self) -> &EnergyScale {
        &self.scale
    }

    /// Decodes a basis state into its conformation.
    pub fn conformation_of(&self, bits: u64) -> Conformation {
        Conformation::from_turns(self.encoding.decode(bits))
    }

    /// Scaled energy of one basis state.
    pub fn energy_of_bits(&self, bits: u64) -> f64 {
        let c = self.conformation_of(bits);
        let b = c.energy_breakdown(&self.seq, ContactMatrix::miyazawa_jernigan());
        self.scale.apply(&b, &self.lambdas)
    }

    /// Raw (unscaled) breakdown of one basis state.
    pub fn breakdown_of_bits(&self, bits: u64) -> EnergyBreakdown {
        self.conformation_of(bits)
            .energy_breakdown(&self.seq, ContactMatrix::miyazawa_jernigan())
    }

    /// Expands the full diagonal `2^n` energies in parallel — the VQE hot
    /// path input.
    pub fn dense_diagonal(&self) -> Vec<f64> {
        let dim = 1u64 << self.num_qubits();
        (0..dim)
            .into_par_iter()
            .map(|bits| self.energy_of_bits(bits))
            .collect()
    }

    /// Exact ground state by exhaustive parallel search: `(bits, energy)`.
    /// Feasible for the entire QDockBank range (≤ 22 qubits = 4M states).
    /// The returned bitstring is reflection-canonicalized (ties broken by
    /// canonical index), so the same geometry is returned no matter which
    /// gauge twin scores first.
    pub fn ground_state(&self) -> (u64, f64) {
        let dim = 1u64 << self.num_qubits();
        let enc = self.encoding;
        let (bits, e) = (0..dim)
            .into_par_iter()
            .map(|bits| (enc.canonicalize(bits), self.energy_of_bits(bits)))
            .reduce(
                || (0, f64::INFINITY),
                |a, b| {
                    if b.1 < a.1 || (b.1 == a.1 && b.0 < a.0) {
                        b
                    } else {
                        a
                    }
                },
            );
        (bits, e)
    }

    /// Pauli-operator form (Z-strings) — exact but exponentially many
    /// terms; intended for small fragments and cross-checking.
    ///
    /// # Panics
    /// Panics above 16 qubits.
    pub fn to_sparse_pauli(&self) -> SparsePauliOp {
        assert!(self.num_qubits() <= 16, "Pauli form limited to 16 qubits");
        SparsePauliOp::from_diagonal(&self.dense_diagonal(), 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham(s: &str) -> FoldingHamiltonian {
        FoldingHamiltonian::with_unit_scale(ProteinSequence::parse(s).unwrap())
    }

    #[test]
    fn ground_state_is_self_avoiding() {
        for s in ["VKDRS", "IQFHFH", "PWWERYQP"] {
            let h = ham(s);
            let (bits, energy) = h.ground_state();
            let c = h.conformation_of(bits);
            assert!(
                c.is_self_avoiding(),
                "{s}: ground state must not pay penalties"
            );
            assert!(
                energy <= 0.0,
                "{s}: ground energy {energy} should be ≤ 0 (contacts or none)"
            );
        }
    }

    #[test]
    fn hydrophobic_sequences_fold_lower() {
        // Same length, same geometry space: hydrophobic chain must reach a
        // lower interaction energy than a polar one.
        let (_, e_hydro) = ham("IIIIII").ground_state();
        let (_, e_polar) = ham("SSSSSS").ground_state();
        assert!(e_hydro < e_polar, "{e_hydro} !< {e_polar}");
    }

    #[test]
    fn penalties_push_energy_up() {
        let h = ham("VKDRS");
        // bits decoding to an immediate reversal (free turn 0 == gauge turn 1)
        let enc = h.encoding();
        let reversal_bits = enc.encode(&[0, 1, 1, 3]); // t2==t3? no: [0,1,1,..] has t1==t2
        let b = h.breakdown_of_bits(reversal_bits);
        assert!(b.chirality >= 1.0);
        let clean_bits = enc.encode(&[0, 1, 0, 1]);
        assert!(h.energy_of_bits(reversal_bits) > h.energy_of_bits(clean_bits));
    }

    #[test]
    fn dense_diagonal_matches_pointwise() {
        let h = ham("VKDRS");
        let diag = h.dense_diagonal();
        assert_eq!(diag.len(), 16);
        for bits in 0..16u64 {
            assert_eq!(diag[bits as usize], h.energy_of_bits(bits));
        }
    }

    #[test]
    fn pauli_form_agrees_with_diagonal() {
        let h = ham("RYRDV");
        let op = h.to_sparse_pauli();
        let diag = h.dense_diagonal();
        for bits in 0..diag.len() as u64 {
            assert!(
                (op.energy_of_bitstring(bits) - diag[bits as usize]).abs() < 1e-9,
                "mismatch at {bits}"
            );
        }
    }

    #[test]
    fn geometry_term_identically_zero() {
        // Invariant documented in EnergyBreakdown: the dense encoding
        // satisfies H_g for every bitstring.
        let h = ham("DGPHGM");
        for bits in (0..h.encoding().search_space()).step_by(7) {
            assert_eq!(h.breakdown_of_bits(bits).geometry, 0.0);
        }
    }

    #[test]
    fn calibrated_scale_reproduces_paper_magnitudes() {
        // Lowest-energy magnitudes from Tables 1–3, by physical qubit count.
        let cases = [
            (12, 10.4, 2.0),     // 5-mers: ~10.4
            (63, 4200.0, 2.0),   // 10-mers: ~3800–4700
            (102, 23000.0, 1.3), // 14-mers: ~21000–24200
        ];
        for (q, expect, tol) in cases {
            let s = EnergyScale::calibrated(q).offset;
            assert!(
                s / expect < tol && expect / s < tol,
                "scale({q}) = {s}, paper ≈ {expect}"
            );
        }
    }

    #[test]
    fn calibrated_energies_positive_and_ordered() {
        let seq = ProteinSequence::parse("LLDTGADDTV").unwrap();
        let h = FoldingHamiltonian::new(seq, Lambdas::default(), EnergyScale::calibrated(63));
        let (bits, e) = h.ground_state();
        assert!(e > 0.0, "calibrated ground energy is offset-dominated");
        // Ground state still the physically right one: no violations.
        assert!(h.conformation_of(bits).is_self_avoiding());
        // A violating state costs more.
        let enc = h.encoding();
        let bad = enc.encode(&[0, 1, 1, 1, 1, 1, 1, 1, 1]);
        assert!(h.energy_of_bits(bad) > e);
    }
}
