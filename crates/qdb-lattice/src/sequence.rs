//! Protein fragment sequences.

use crate::amino::AminoAcid;
use std::fmt;
use std::str::FromStr;

/// Errors from sequence parsing/validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SequenceError {
    /// A character outside the 20 one-letter codes.
    InvalidResidue(char),
    /// Too short to fold on the lattice (need ≥ 4 residues).
    TooShort(usize),
    /// Longer than the 64-bit turn encoding supports.
    TooLong(usize),
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::InvalidResidue(c) => write!(f, "invalid residue character {c:?}"),
            SequenceError::TooShort(n) => {
                write!(f, "sequence of {n} residues is too short (min 4)")
            }
            SequenceError::TooLong(n) => write!(f, "sequence of {n} residues is too long (max 30)"),
        }
    }
}

impl std::error::Error for SequenceError {}

/// A validated amino-acid sequence (4–30 residues — the lattice/VQE range).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProteinSequence {
    residues: Vec<AminoAcid>,
}

impl ProteinSequence {
    /// Validates and wraps a residue list.
    pub fn new(residues: Vec<AminoAcid>) -> Result<Self, SequenceError> {
        if residues.len() < 4 {
            return Err(SequenceError::TooShort(residues.len()));
        }
        if residues.len() > 30 {
            return Err(SequenceError::TooLong(residues.len()));
        }
        Ok(Self { residues })
    }

    /// Parses one-letter codes, e.g. `"DYLEAYGKGGVKAK"`.
    pub fn parse(s: &str) -> Result<Self, SequenceError> {
        let residues = s
            .chars()
            .map(|c| AminoAcid::from_one_letter(c).ok_or(SequenceError::InvalidResidue(c)))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(residues)
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Never true (validated ≥ 4), present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Residue at `i`.
    pub fn residue(&self, i: usize) -> AminoAcid {
        self.residues[i]
    }

    /// All residues.
    pub fn residues(&self) -> &[AminoAcid] {
        &self.residues
    }

    /// Fraction of residues that are hydrophobic.
    pub fn hydrophobic_fraction(&self) -> f64 {
        let h = self.residues.iter().filter(|r| r.is_hydrophobic()).count();
        h as f64 / self.len() as f64
    }

    /// Net formal charge of the fragment.
    pub fn net_charge(&self) -> i32 {
        self.residues.iter().map(|r| r.charge() as i32).sum()
    }

    /// A stable 64-bit hash of the sequence (FNV-1a over one-letter codes);
    /// used to derive per-fragment RNG seeds.
    pub fn stable_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for r in &self.residues {
            h ^= r.one_letter() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

impl FromStr for ProteinSequence {
    type Err = SequenceError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

impl fmt::Display for ProteinSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.residues {
            write!(f, "{}", r.one_letter())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["DYLEAYGKGGVKAK", "VKDRS", "EDACQGDSGG", "LLDTGADDTV"] {
            let seq = ProteinSequence::parse(s).unwrap();
            assert_eq!(seq.to_string(), s);
            assert_eq!(seq.len(), s.len());
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            ProteinSequence::parse("AXB"),
            Err(SequenceError::InvalidResidue('X')).map_err(|e| e)
        );
        assert!(matches!(
            ProteinSequence::parse("AAA"),
            Err(SequenceError::TooShort(3))
        ));
        let long = "A".repeat(31);
        assert!(matches!(
            ProteinSequence::parse(&long),
            Err(SequenceError::TooLong(31))
        ));
    }

    #[test]
    fn properties() {
        let seq = ProteinSequence::parse("ILVK").unwrap();
        assert!(seq.hydrophobic_fraction() > 0.7);
        assert_eq!(seq.net_charge(), 1);
        let acidic = ProteinSequence::parse("DDEE").unwrap();
        assert_eq!(acidic.net_charge(), -4);
    }

    #[test]
    fn stable_hash_distinguishes_and_repeats() {
        let a = ProteinSequence::parse("VKDRS").unwrap();
        let b = ProteinSequence::parse("VKDRS").unwrap();
        let c = ProteinSequence::parse("RYRDV").unwrap();
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
    }
}
