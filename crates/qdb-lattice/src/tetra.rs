//! Tetrahedral (diamond) lattice geometry (paper §4.3.1).
//!
//! Each residue is a node with four possible extension directions and a
//! fixed ~109.47° bond angle. The diamond lattice has two sublattices: even
//! residues step along `+v[t]`, odd residues along `-v[t]`, where
//!
//! ```text
//! v = {(1,1,1), (1,-1,-1), (-1,1,-1), (-1,-1,1)}
//! ```
//!
//! Consecutive distinct turns give `cos θ = v[a]·(-v[b]) / 3 = -1/3`,
//! i.e. θ = 109.47°; equal consecutive turns mean bond reversal (the
//! chirality violation penalized by `H_c`).

/// Integer lattice coordinates (unit-step frame; one bond = √3 units).
pub type LatticePoint = [i32; 3];

/// The four tetrahedral direction vectors.
pub const DIRECTIONS: [LatticePoint; 4] = [[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]];

/// A turn choice t ∈ {0,1,2,3}.
pub type Turn = u8;

/// Squared bond length in lattice units (√3 per step).
pub const BOND_LEN_SQ: i32 = 3;

/// Step vector for bond `i` (0-based) taking turn `t`: sublattice parity
/// alternates the sign.
#[inline]
pub fn step(bond_index: usize, t: Turn) -> LatticePoint {
    let v = DIRECTIONS[t as usize];
    if bond_index % 2 == 0 {
        v
    } else {
        [-v[0], -v[1], -v[2]]
    }
}

/// Walks a turn sequence from the origin; returns `turns.len() + 1`
/// positions.
pub fn walk(turns: &[Turn]) -> Vec<LatticePoint> {
    let mut pos = Vec::with_capacity(turns.len() + 1);
    let mut p: LatticePoint = [0, 0, 0];
    pos.push(p);
    for (i, &t) in turns.iter().enumerate() {
        let s = step(i, t);
        p = [p[0] + s[0], p[1] + s[1], p[2] + s[2]];
        pos.push(p);
    }
    pos
}

/// Squared Euclidean distance between lattice points.
#[inline]
pub fn dist_sq(a: LatticePoint, b: LatticePoint) -> i64 {
    let dx = (a[0] - b[0]) as i64;
    let dy = (a[1] - b[1]) as i64;
    let dz = (a[2] - b[2]) as i64;
    dx * dx + dy * dy + dz * dz
}

/// True when two non-bonded residues sit at contact distance (one lattice
/// bond length apart — the nearest possible non-bonded approach on the
/// diamond lattice, only achievable for odd sequence separation).
#[inline]
pub fn in_contact(a: LatticePoint, b: LatticePoint) -> bool {
    dist_sq(a, b) == BOND_LEN_SQ as i64
}

/// Cα–Cα virtual bond length in Å.
pub const CA_CA_ANGSTROM: f64 = 3.8;

/// Scale factor from lattice units to Å.
pub fn lattice_scale() -> f64 {
    CA_CA_ANGSTROM / (BOND_LEN_SQ as f64).sqrt()
}

/// Converts a lattice point to Cartesian Å coordinates.
pub fn to_angstrom(p: LatticePoint) -> [f64; 3] {
    let s = lattice_scale();
    [p[0] as f64 * s, p[1] as f64 * s, p[2] as f64 * s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_have_equal_length() {
        for v in DIRECTIONS {
            assert_eq!(dist_sq(v, [0, 0, 0]), 3);
        }
    }

    #[test]
    fn tetrahedral_angle() {
        // Bond angle at the shared residue between bonds v[a] and -v[b]:
        // cos θ = (-v[a]) · (-v[b]) / 3 ... with the vertex convention
        // cos θ = (p_{i-1}-p_i)·(p_{i+1}-p_i)/|…|² = (v[a]·v[b]) / 3 = -1/3.
        for a in 0..4u8 {
            for b in 0..4u8 {
                if a == b {
                    continue;
                }
                let va = DIRECTIONS[a as usize];
                let vb = DIRECTIONS[b as usize];
                let dot = (va[0] * vb[0] + va[1] * vb[1] + va[2] * vb[2]) as f64;
                let cos = dot / 3.0;
                let angle = cos.acos().to_degrees();
                assert!((angle - 109.47).abs() < 0.01, "angle {angle}");
            }
        }
    }

    #[test]
    fn equal_turns_reverse_the_bond() {
        // Two equal consecutive turns return to the same position.
        let pos = walk(&[0, 0]);
        assert_eq!(pos[0], pos[2]);
    }

    #[test]
    fn walk_lengths_and_bonds() {
        let turns = [0u8, 1, 2, 3, 1, 2];
        let pos = walk(&turns);
        assert_eq!(pos.len(), 7);
        for w in pos.windows(2) {
            assert_eq!(dist_sq(w[0], w[1]), BOND_LEN_SQ as i64);
        }
    }

    #[test]
    fn contact_requires_odd_separation() {
        // A simple folded walk: check any contact pair has odd separation.
        let turns = [0u8, 1, 0, 2, 0, 3, 1, 2];
        let pos = walk(&turns);
        for i in 0..pos.len() {
            for j in (i + 2)..pos.len() {
                if in_contact(pos[i], pos[j]) {
                    assert_eq!((j - i) % 2, 1, "contact at even separation {i},{j}");
                }
            }
        }
    }

    #[test]
    fn angstrom_scaling() {
        let pos = walk(&[0, 1]);
        let a0 = to_angstrom(pos[0]);
        let a1 = to_angstrom(pos[1]);
        let d: f64 = (0..3).map(|k| (a1[k] - a0[k]).powi(2)).sum::<f64>().sqrt();
        assert!((d - CA_CA_ANGSTROM).abs() < 1e-12);
    }
}
