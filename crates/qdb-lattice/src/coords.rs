//! Lattice → Cartesian coordinate export.
//!
//! Converts decoded conformations into Cα traces in Å (3.8 Å virtual
//! bonds), centered for docking-box placement (paper §4.3.3: "structures
//! are subsequently centered to facilitate docking procedures").

use crate::conformation::Conformation;
use crate::tetra::{lattice_scale, CA_CA_ANGSTROM};

/// A Cα trace in Å.
#[derive(Clone, Debug, PartialEq)]
pub struct CaTrace {
    coords: Vec<[f64; 3]>,
}

impl CaTrace {
    /// Builds the trace of a conformation (uncentered).
    pub fn from_conformation(c: &Conformation) -> Self {
        let s = lattice_scale();
        let coords = c
            .positions()
            .iter()
            .map(|p| [p[0] as f64 * s, p[1] as f64 * s, p[2] as f64 * s])
            .collect();
        Self { coords }
    }

    /// Builds from raw coordinates.
    pub fn from_coords(coords: Vec<[f64; 3]>) -> Self {
        Self { coords }
    }

    /// The coordinates.
    pub fn coords(&self) -> &[[f64; 3]] {
        &self.coords
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Geometric centroid.
    pub fn centroid(&self) -> [f64; 3] {
        let n = self.coords.len().max(1) as f64;
        self.coords.iter().fold([0.0; 3], |acc, c| {
            [acc[0] + c[0] / n, acc[1] + c[1] / n, acc[2] + c[2] / n]
        })
    }

    /// Returns a copy translated so the centroid is at the origin.
    pub fn centered(&self) -> CaTrace {
        let c = self.centroid();
        CaTrace {
            coords: self
                .coords
                .iter()
                .map(|p| [p[0] - c[0], p[1] - c[1], p[2] - c[2]])
                .collect(),
        }
    }

    /// Checks the virtual-bond invariant (all consecutive distances =
    /// 3.8 Å) within `tol`.
    pub fn bonds_ok(&self, tol: f64) -> bool {
        self.coords.windows(2).all(|w| {
            let d: f64 = (0..3)
                .map(|k| (w[1][k] - w[0][k]).powi(2))
                .sum::<f64>()
                .sqrt();
            (d - CA_CA_ANGSTROM).abs() <= tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformation::Conformation;

    #[test]
    fn trace_preserves_bond_lengths() {
        let c = Conformation::from_turns(vec![0, 1, 2, 3, 0, 2]);
        let t = CaTrace::from_conformation(&c);
        assert_eq!(t.len(), 7);
        assert!(t.bonds_ok(1e-9));
    }

    #[test]
    fn centering_zeroes_centroid() {
        let c = Conformation::from_turns(vec![0, 1, 0, 2]);
        let t = CaTrace::from_conformation(&c).centered();
        let centroid = t.centroid();
        for k in 0..3 {
            assert!(centroid[k].abs() < 1e-12);
        }
        assert!(t.bonds_ok(1e-9), "centering must not distort geometry");
    }
}
