//! # qdb-lattice
//!
//! Coarse-grained tetrahedral-lattice protein model and the diagonal
//! folding Hamiltonian `H = λc·Hc + λg·Hg + λd·Hd + λi·Hi` of the paper's
//! §4.3.1: amino-acid properties, Miyazawa–Jernigan-style contact energies,
//! turn-based qubit encoding (2·(N−3) logical qubits), conformation
//! decoding, energy evaluation, and Cartesian export of Cα traces.

pub mod amino;
pub mod conformation;
pub mod coords;
pub mod encoding;
pub mod hamiltonian;
pub mod mj;
pub mod sequence;
pub mod tetra;

pub use amino::{AminoAcid, ALL_AMINO_ACIDS};
pub use conformation::{Conformation, EnergyBreakdown, Lambdas};
pub use coords::CaTrace;
pub use encoding::TurnEncoding;
pub use hamiltonian::{EnergyScale, FoldingHamiltonian};
pub use mj::ContactMatrix;
pub use sequence::{ProteinSequence, SequenceError};
