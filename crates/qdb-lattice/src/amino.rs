//! The twenty standard amino acids and their coarse-grained properties.

use std::fmt;

/// One of the 20 standard amino acids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AminoAcid {
    Ala,
    Arg,
    Asn,
    Asp,
    Cys,
    Gln,
    Glu,
    Gly,
    His,
    Ile,
    Leu,
    Lys,
    Met,
    Phe,
    Pro,
    Ser,
    Thr,
    Trp,
    Tyr,
    Val,
}

/// All 20 amino acids in enum order.
pub const ALL_AMINO_ACIDS: [AminoAcid; 20] = [
    AminoAcid::Ala,
    AminoAcid::Arg,
    AminoAcid::Asn,
    AminoAcid::Asp,
    AminoAcid::Cys,
    AminoAcid::Gln,
    AminoAcid::Glu,
    AminoAcid::Gly,
    AminoAcid::His,
    AminoAcid::Ile,
    AminoAcid::Leu,
    AminoAcid::Lys,
    AminoAcid::Met,
    AminoAcid::Phe,
    AminoAcid::Pro,
    AminoAcid::Ser,
    AminoAcid::Thr,
    AminoAcid::Trp,
    AminoAcid::Tyr,
    AminoAcid::Val,
];

impl AminoAcid {
    /// Index 0..20 (enum order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses a one-letter code (case-insensitive).
    pub fn from_one_letter(c: char) -> Option<AminoAcid> {
        Some(match c.to_ascii_uppercase() {
            'A' => AminoAcid::Ala,
            'R' => AminoAcid::Arg,
            'N' => AminoAcid::Asn,
            'D' => AminoAcid::Asp,
            'C' => AminoAcid::Cys,
            'Q' => AminoAcid::Gln,
            'E' => AminoAcid::Glu,
            'G' => AminoAcid::Gly,
            'H' => AminoAcid::His,
            'I' => AminoAcid::Ile,
            'L' => AminoAcid::Leu,
            'K' => AminoAcid::Lys,
            'M' => AminoAcid::Met,
            'F' => AminoAcid::Phe,
            'P' => AminoAcid::Pro,
            'S' => AminoAcid::Ser,
            'T' => AminoAcid::Thr,
            'W' => AminoAcid::Trp,
            'Y' => AminoAcid::Tyr,
            'V' => AminoAcid::Val,
            _ => return None,
        })
    }

    /// One-letter code.
    pub fn one_letter(self) -> char {
        match self {
            AminoAcid::Ala => 'A',
            AminoAcid::Arg => 'R',
            AminoAcid::Asn => 'N',
            AminoAcid::Asp => 'D',
            AminoAcid::Cys => 'C',
            AminoAcid::Gln => 'Q',
            AminoAcid::Glu => 'E',
            AminoAcid::Gly => 'G',
            AminoAcid::His => 'H',
            AminoAcid::Ile => 'I',
            AminoAcid::Leu => 'L',
            AminoAcid::Lys => 'K',
            AminoAcid::Met => 'M',
            AminoAcid::Phe => 'F',
            AminoAcid::Pro => 'P',
            AminoAcid::Ser => 'S',
            AminoAcid::Thr => 'T',
            AminoAcid::Trp => 'W',
            AminoAcid::Tyr => 'Y',
            AminoAcid::Val => 'V',
        }
    }

    /// Three-letter code (PDB residue name).
    pub fn three_letter(self) -> &'static str {
        match self {
            AminoAcid::Ala => "ALA",
            AminoAcid::Arg => "ARG",
            AminoAcid::Asn => "ASN",
            AminoAcid::Asp => "ASP",
            AminoAcid::Cys => "CYS",
            AminoAcid::Gln => "GLN",
            AminoAcid::Glu => "GLU",
            AminoAcid::Gly => "GLY",
            AminoAcid::His => "HIS",
            AminoAcid::Ile => "ILE",
            AminoAcid::Leu => "LEU",
            AminoAcid::Lys => "LYS",
            AminoAcid::Met => "MET",
            AminoAcid::Phe => "PHE",
            AminoAcid::Pro => "PRO",
            AminoAcid::Ser => "SER",
            AminoAcid::Thr => "THR",
            AminoAcid::Trp => "TRP",
            AminoAcid::Tyr => "TYR",
            AminoAcid::Val => "VAL",
        }
    }

    /// Parses a three-letter code (case-insensitive).
    pub fn from_three_letter(s: &str) -> Option<AminoAcid> {
        let up = s.to_ascii_uppercase();
        ALL_AMINO_ACIDS.into_iter().find(|a| a.three_letter() == up)
    }

    /// Kyte–Doolittle hydropathy index.
    pub fn hydropathy(self) -> f64 {
        match self {
            AminoAcid::Ile => 4.5,
            AminoAcid::Val => 4.2,
            AminoAcid::Leu => 3.8,
            AminoAcid::Phe => 2.8,
            AminoAcid::Cys => 2.5,
            AminoAcid::Met => 1.9,
            AminoAcid::Ala => 1.8,
            AminoAcid::Gly => -0.4,
            AminoAcid::Thr => -0.7,
            AminoAcid::Ser => -0.8,
            AminoAcid::Trp => -0.9,
            AminoAcid::Tyr => -1.3,
            AminoAcid::Pro => -1.6,
            AminoAcid::His => -3.2,
            AminoAcid::Glu => -3.5,
            AminoAcid::Gln => -3.5,
            AminoAcid::Asp => -3.5,
            AminoAcid::Asn => -3.5,
            AminoAcid::Lys => -3.9,
            AminoAcid::Arg => -4.5,
        }
    }

    /// Net side-chain charge at physiological pH.
    pub fn charge(self) -> i8 {
        match self {
            AminoAcid::Arg | AminoAcid::Lys => 1,
            AminoAcid::His => 1, // partially protonated; coarse-grained as +1
            AminoAcid::Asp | AminoAcid::Glu => -1,
            _ => 0,
        }
    }

    /// True for polar (hydrogen-bonding) side chains.
    pub fn is_polar(self) -> bool {
        matches!(
            self,
            AminoAcid::Arg
                | AminoAcid::Asn
                | AminoAcid::Asp
                | AminoAcid::Gln
                | AminoAcid::Glu
                | AminoAcid::His
                | AminoAcid::Lys
                | AminoAcid::Ser
                | AminoAcid::Thr
                | AminoAcid::Tyr
        )
    }

    /// True for hydrophobic side chains (positive hydropathy).
    pub fn is_hydrophobic(self) -> bool {
        self.hydropathy() > 0.0
    }

    /// Average side-chain volume in Å³ (Zamyatnin), used by the peptide
    /// builder to size coarse side-chain spheres.
    pub fn side_chain_volume(self) -> f64 {
        match self {
            AminoAcid::Gly => 60.1,
            AminoAcid::Ala => 88.6,
            AminoAcid::Ser => 89.0,
            AminoAcid::Cys => 108.5,
            AminoAcid::Asp => 111.1,
            AminoAcid::Pro => 112.7,
            AminoAcid::Asn => 114.1,
            AminoAcid::Thr => 116.1,
            AminoAcid::Glu => 138.4,
            AminoAcid::Val => 140.0,
            AminoAcid::Gln => 143.8,
            AminoAcid::His => 153.2,
            AminoAcid::Met => 162.9,
            AminoAcid::Ile => 166.7,
            AminoAcid::Leu => 166.7,
            AminoAcid::Lys => 168.6,
            AminoAcid::Arg => 173.4,
            AminoAcid::Phe => 189.9,
            AminoAcid::Tyr => 193.6,
            AminoAcid::Trp => 227.8,
        }
    }
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.one_letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_letter_round_trip() {
        for aa in ALL_AMINO_ACIDS {
            assert_eq!(AminoAcid::from_one_letter(aa.one_letter()), Some(aa));
            assert_eq!(
                AminoAcid::from_one_letter(aa.one_letter().to_ascii_lowercase()),
                Some(aa)
            );
        }
        assert_eq!(AminoAcid::from_one_letter('B'), None);
        assert_eq!(AminoAcid::from_one_letter('Z'), None);
    }

    #[test]
    fn three_letter_round_trip() {
        for aa in ALL_AMINO_ACIDS {
            assert_eq!(AminoAcid::from_three_letter(aa.three_letter()), Some(aa));
        }
        assert_eq!(AminoAcid::from_three_letter("XYZ"), None);
    }

    #[test]
    fn indices_are_dense() {
        for (i, aa) in ALL_AMINO_ACIDS.into_iter().enumerate() {
            assert_eq!(aa.index(), i);
        }
    }

    #[test]
    fn charges_and_polarity() {
        assert_eq!(AminoAcid::Arg.charge(), 1);
        assert_eq!(AminoAcid::Asp.charge(), -1);
        assert_eq!(AminoAcid::Leu.charge(), 0);
        assert!(AminoAcid::Ser.is_polar());
        assert!(!AminoAcid::Leu.is_polar());
        assert!(AminoAcid::Ile.is_hydrophobic());
        assert!(!AminoAcid::Lys.is_hydrophobic());
    }

    #[test]
    fn hydropathy_ordering_sane() {
        assert!(AminoAcid::Ile.hydropathy() > AminoAcid::Ala.hydropathy());
        assert!(AminoAcid::Ala.hydropathy() > AminoAcid::Gly.hydropathy());
        assert!(AminoAcid::Gly.hydropathy() > AminoAcid::Arg.hydropathy());
    }
}
