//! Miyazawa–Jernigan-style residue–residue contact energies (paper §6.2).
//!
//! The paper validates interaction coverage against the Miyazawa–Jernigan
//! statistical potential (400 ordered pairs over 20 amino acids). We do not
//! copy the 210-entry 1985 table verbatim; instead we use the
//! Li–Tang–Wingreen decomposition (PRL 79:765, 1997), which showed the MJ
//! matrix is captured to high accuracy by
//!
//! `e(a, b) ≈ c0 + c1·(q_a + q_b) + c2·q_a·q_b`
//!
//! with a per-residue hydrophobicity-like factor `q`. We take `q` as the
//! (rescaled) Kyte–Doolittle hydropathy and add an electrostatic term so
//! that like-charged pairs are repulsive and salt bridges attractive —
//! preserving exactly the qualitative structure downstream code depends on
//! (hydrophobic cores attract most strongly; polar/charged residues prefer
//! the surface). Units are dimensionless contact energies (RT ≈ 0.6
//! kcal/mol at 300 K).

use crate::amino::{AminoAcid, ALL_AMINO_ACIDS};

/// Li–Tang–Wingreen fit constants (tuned so the strongest hydrophobic pairs
/// land near the MJ85 ≈ −6…−7 range and weak polar pairs near −1).
const C0: f64 = -2.5;
const C1: f64 = -0.45;
const C2: f64 = -0.12;
/// Electrostatic contact contribution per unit charge product.
const ELEC: f64 = 0.9;

/// A dense, symmetric 20×20 contact-energy matrix.
#[derive(Clone, Debug)]
pub struct ContactMatrix {
    e: [[f64; 20]; 20],
}

impl ContactMatrix {
    /// The default Miyazawa–Jernigan-style matrix.
    pub fn miyazawa_jernigan() -> &'static ContactMatrix {
        use std::sync::OnceLock;
        static MATRIX: OnceLock<ContactMatrix> = OnceLock::new();
        MATRIX.get_or_init(|| {
            let mut e = [[0.0; 20]; 20];
            for a in ALL_AMINO_ACIDS {
                for b in ALL_AMINO_ACIDS {
                    e[a.index()][b.index()] = pair_energy(a, b);
                }
            }
            ContactMatrix { e }
        })
    }

    /// Contact energy `e(a, b)` (symmetric).
    #[inline]
    pub fn energy(&self, a: AminoAcid, b: AminoAcid) -> f64 {
        self.e[a.index()][b.index()]
    }

    /// The strongest (most negative) pair in the matrix.
    pub fn strongest_pair(&self) -> (AminoAcid, AminoAcid, f64) {
        let mut best = (AminoAcid::Ala, AminoAcid::Ala, f64::INFINITY);
        for a in ALL_AMINO_ACIDS {
            for b in ALL_AMINO_ACIDS {
                let e = self.energy(a, b);
                if e < best.2 {
                    best = (a, b, e);
                }
            }
        }
        best
    }

    /// Mean contact energy over all 400 ordered pairs.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.e.iter().flatten().sum();
        total / 400.0
    }
}

/// `q` factor: hydropathy rescaled to roughly [0, 1.8] so hydrophobics get
/// large positive q (stronger mutual attraction through C1/C2 < 0).
fn q_factor(a: AminoAcid) -> f64 {
    (a.hydropathy() + 4.5) / 5.0
}

fn pair_energy(a: AminoAcid, b: AminoAcid) -> f64 {
    let (qa, qb) = (q_factor(a), q_factor(b));
    // Products are computed before scaling so the matrix is *exactly*
    // symmetric in IEEE arithmetic.
    let qprod = qa * qb;
    let cprod = (a.charge() as f64) * (b.charge() as f64);
    C0 + C1 * (qa + qb) + C2 * qprod + ELEC * cprod
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        let m = ContactMatrix::miyazawa_jernigan();
        for a in ALL_AMINO_ACIDS {
            for b in ALL_AMINO_ACIDS {
                assert_eq!(m.energy(a, b), m.energy(b, a));
            }
        }
    }

    #[test]
    fn hydrophobic_pairs_attract_most() {
        let m = ContactMatrix::miyazawa_jernigan();
        let (a, b, e) = m.strongest_pair();
        assert!(
            a.is_hydrophobic() && b.is_hydrophobic(),
            "strongest pair {a}{b}"
        );
        assert!(
            e < -4.0,
            "hydrophobic core should be strongly attractive, got {e}"
        );
        // Ile–Ile stronger than Ser–Ser.
        assert!(
            m.energy(AminoAcid::Ile, AminoAcid::Ile) < m.energy(AminoAcid::Ser, AminoAcid::Ser)
        );
    }

    #[test]
    fn like_charges_repel_relative_to_salt_bridges() {
        let m = ContactMatrix::miyazawa_jernigan();
        let kk = m.energy(AminoAcid::Lys, AminoAcid::Lys);
        let ke = m.energy(AminoAcid::Lys, AminoAcid::Glu);
        assert!(
            ke < kk - 1.0,
            "salt bridge (K–E = {ke}) must beat like-charge (K–K = {kk})"
        );
    }

    #[test]
    fn energies_in_plausible_mj_range() {
        let m = ContactMatrix::miyazawa_jernigan();
        for a in ALL_AMINO_ACIDS {
            for b in ALL_AMINO_ACIDS {
                let e = m.energy(a, b);
                assert!(
                    (-8.0..=1.0).contains(&e),
                    "{a}{b} energy {e} outside MJ-like range"
                );
            }
        }
        let mean = m.mean();
        assert!(
            (-5.0..=-1.0).contains(&mean),
            "mean {mean} should be attractive"
        );
    }

    #[test]
    fn all_400_ordered_pairs_defined() {
        // Figure 5 of the paper counts 400 possible interaction types; the
        // matrix must define every one of them.
        let m = ContactMatrix::miyazawa_jernigan();
        let mut count = 0;
        for a in ALL_AMINO_ACIDS {
            for b in ALL_AMINO_ACIDS {
                assert!(m.energy(a, b).is_finite());
                count += 1;
            }
        }
        assert_eq!(count, 400);
    }
}
