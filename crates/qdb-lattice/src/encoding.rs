//! Turn-based qubit encoding of lattice conformations (paper §4.3.1).
//!
//! An `N`-residue fragment has `N−1` bonds. Each turn takes 2 qubits
//! (4 directions). Global rotation/reflection symmetry of the diamond
//! lattice lets us fix the first turn to `0` and the second to `1`
//! (gauge fixing, as in Robert et al. 2021), leaving
//!
//! `logical qubits = 2·(N − 3)`
//!
//! conformation qubits — at most 22 for the longest (14-residue) fragments,
//! which is what makes exact statevector simulation of the paper's logical
//! circuits tractable (DESIGN.md §3.1).

use crate::tetra::Turn;

/// Maps bitstrings ↔ turn sequences for an `N`-residue fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TurnEncoding {
    num_residues: usize,
}

impl TurnEncoding {
    /// Encoding for an `N`-residue fragment.
    ///
    /// # Panics
    /// Panics below 4 residues (no free turns) or above 30.
    pub fn new(num_residues: usize) -> Self {
        assert!(
            (4..=30).contains(&num_residues),
            "unsupported length {num_residues}"
        );
        Self { num_residues }
    }

    /// Number of residues `N`.
    pub fn num_residues(&self) -> usize {
        self.num_residues
    }

    /// Number of bonds `N − 1`.
    pub fn num_bonds(&self) -> usize {
        self.num_residues - 1
    }

    /// Free (qubit-encoded) turns: `N − 3`.
    pub fn num_free_turns(&self) -> usize {
        self.num_residues - 3
    }

    /// Logical qubit count `2·(N − 3)`.
    pub fn num_qubits(&self) -> usize {
        2 * self.num_free_turns()
    }

    /// Size of the conformation search space, `4^(N−3)`.
    pub fn search_space(&self) -> u64 {
        1u64 << self.num_qubits()
    }

    /// Decodes a basis-state index into the full turn sequence
    /// (gauge turns `[0, 1]` prepended). Bits `2k, 2k+1` hold free turn `k`.
    pub fn decode(&self, bits: u64) -> Vec<Turn> {
        let mut turns = Vec::with_capacity(self.num_bonds());
        turns.push(0);
        if self.num_bonds() > 1 {
            turns.push(1);
        }
        for k in 0..self.num_free_turns() {
            let t = ((bits >> (2 * k)) & 0b11) as Turn;
            turns.push(t);
        }
        turns
    }

    /// Canonicalizes the residual reflection gauge. Fixing the first two
    /// turns to `[0, 1]` still leaves one lattice symmetry: reflection
    /// through the plane of the first two bonds, which swaps directions
    /// 2 ↔ 3 in every remaining turn and leaves every energy term
    /// invariant. The canonical representative is the twin whose first
    /// free turn from `{2, 3}` is a `2` — the chirality convention the
    /// paper's `H_c` term pins down on hardware.
    pub fn canonicalize(&self, bits: u64) -> u64 {
        let mut swap = false;
        for k in 0..self.num_free_turns() {
            let t = (bits >> (2 * k)) & 0b11;
            if t == 2 {
                break;
            }
            if t == 3 {
                swap = true;
                break;
            }
        }
        if !swap {
            return bits;
        }
        let mut out = 0u64;
        for k in 0..self.num_free_turns() {
            let t = (bits >> (2 * k)) & 0b11;
            let t = match t {
                2 => 3,
                3 => 2,
                other => other,
            };
            out |= t << (2 * k);
        }
        out
    }

    /// Encodes a full turn sequence back into a basis-state index.
    ///
    /// # Panics
    /// Panics if the sequence length is wrong or the gauge turns are not
    /// `[0, 1]`.
    pub fn encode(&self, turns: &[Turn]) -> u64 {
        assert_eq!(turns.len(), self.num_bonds(), "turn count mismatch");
        assert_eq!(turns[0], 0, "gauge: first turn must be 0");
        if self.num_bonds() > 1 {
            assert_eq!(turns[1], 1, "gauge: second turn must be 1");
        }
        let mut bits = 0u64;
        for (k, &t) in turns[2.min(turns.len())..].iter().enumerate() {
            assert!(t < 4);
            bits |= (t as u64) << (2 * k);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_match_design() {
        // (N, logical qubits): the conformation registers behind the
        // paper's physical allocations.
        for (n, q) in [(5, 4), (8, 10), (10, 14), (14, 22)] {
            assert_eq!(TurnEncoding::new(n).num_qubits(), q);
        }
    }

    #[test]
    fn decode_prepends_gauge() {
        let enc = TurnEncoding::new(6);
        let turns = enc.decode(0);
        assert_eq!(turns, vec![0, 1, 0, 0, 0]);
        assert_eq!(turns.len(), enc.num_bonds());
    }

    #[test]
    fn encode_decode_round_trip() {
        let enc = TurnEncoding::new(7);
        for bits in 0..enc.search_space() {
            assert_eq!(enc.encode(&enc.decode(bits)), bits);
        }
    }

    #[test]
    fn decode_extracts_two_bit_fields() {
        let enc = TurnEncoding::new(6);
        // free turns: k=0 → bits 0-1, k=1 → bits 2-3, k=2 → bits 4-5
        let bits = 0b11_10_01u64;
        assert_eq!(enc.decode(bits), vec![0, 1, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "gauge")]
    fn encode_rejects_bad_gauge() {
        let enc = TurnEncoding::new(5);
        enc.encode(&[1, 1, 0, 0]);
    }

    #[test]
    fn search_space_sizes() {
        assert_eq!(TurnEncoding::new(5).search_space(), 16);
        assert_eq!(TurnEncoding::new(14).search_space(), 1 << 22);
    }
}
