//! Decoded lattice conformations and their energy breakdown.

use crate::mj::ContactMatrix;
use crate::sequence::ProteinSequence;
use crate::tetra::{dist_sq, in_contact, walk, LatticePoint, Turn, BOND_LEN_SQ};

/// A residue chain placed on the diamond lattice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conformation {
    turns: Vec<Turn>,
    positions: Vec<LatticePoint>,
}

/// Per-term energy decomposition `H = λc·Hc + λg·Hg + λd·Hd + λi·Hi`
/// (paper §4.3.1), in the Hamiltonian's dimensionless units *before*
/// applying λ weights and the hardware energy scale.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Chirality violations: count of reversed bonds (equal consecutive
    /// turns).
    pub chirality: f64,
    /// Geometric constraint violations. Identically zero under the dense
    /// turn encoding (every bitstring decodes to a valid tetrahedral
    /// geometry); kept for fidelity to the paper's four-term Hamiltonian.
    pub geometry: f64,
    /// Excluded-volume violations: residue pairs occupying one lattice
    /// site.
    pub overlap: f64,
    /// Miyazawa–Jernigan contact energy over non-bonded lattice contacts.
    pub interaction: f64,
}

impl EnergyBreakdown {
    /// Weighted total with unit hardware scale.
    pub fn total(&self, lambda: &Lambdas) -> f64 {
        lambda.chirality * self.chirality
            + lambda.geometry * self.geometry
            + lambda.overlap * self.overlap
            + lambda.interaction * self.interaction
    }
}

/// The λ weights of the total Hamiltonian. The paper sets all four to 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lambdas {
    /// λc.
    pub chirality: f64,
    /// λg.
    pub geometry: f64,
    /// λd.
    pub overlap: f64,
    /// λi.
    pub interaction: f64,
}

impl Default for Lambdas {
    fn default() -> Self {
        Self {
            chirality: 1.0,
            geometry: 1.0,
            overlap: 1.0,
            interaction: 1.0,
        }
    }
}

impl Conformation {
    /// Builds a conformation from a full turn sequence.
    pub fn from_turns(turns: Vec<Turn>) -> Self {
        let positions = walk(&turns);
        Self { turns, positions }
    }

    /// The turn sequence (length = residues − 1).
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Lattice positions (length = residues).
    pub fn positions(&self) -> &[LatticePoint] {
        &self.positions
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True for the degenerate empty chain (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Count of reversed bonds (`t_i == t_{i+1}`) — the `H_c` violations.
    pub fn chirality_violations(&self) -> usize {
        self.turns.windows(2).filter(|w| w[0] == w[1]).count()
    }

    /// Count of overlapping residue pairs with sequence separation ≥ 4
    /// (separation-2 overlaps are exactly the chirality violations and are
    /// charged by `H_c` instead) — the `H_d` violations.
    pub fn overlap_violations(&self) -> usize {
        let n = self.positions.len();
        let mut count = 0;
        for i in 0..n {
            for j in (i + 4)..n {
                if (j - i) % 2 == 0 && self.positions[i] == self.positions[j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// True when no two residues share a lattice site.
    pub fn is_self_avoiding(&self) -> bool {
        self.chirality_violations() == 0 && self.overlap_violations() == 0
    }

    /// Non-bonded lattice contacts `(i, j)` with `j − i ≥ 3` at one bond
    /// length — the pairs that contribute `H_i` energy.
    pub fn contacts(&self) -> Vec<(usize, usize)> {
        let n = self.positions.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 3)..n {
                if in_contact(self.positions[i], self.positions[j]) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Radius of gyration in lattice units (compactness measure).
    pub fn radius_of_gyration(&self) -> f64 {
        let n = self.positions.len() as f64;
        let mean: [f64; 3] = self.positions.iter().fold([0.0; 3], |acc, p| {
            [
                acc[0] + p[0] as f64 / n,
                acc[1] + p[1] as f64 / n,
                acc[2] + p[2] as f64 / n,
            ]
        });
        let msq: f64 = self
            .positions
            .iter()
            .map(|p| {
                (p[0] as f64 - mean[0]).powi(2)
                    + (p[1] as f64 - mean[1]).powi(2)
                    + (p[2] as f64 - mean[2]).powi(2)
            })
            .sum::<f64>()
            / n;
        msq.sqrt()
    }

    /// End-to-end squared distance in lattice units.
    pub fn end_to_end_sq(&self) -> i64 {
        dist_sq(
            self.positions[0],
            *self.positions.last().expect("non-empty"),
        )
    }

    /// Computes the per-term energy breakdown against a sequence.
    ///
    /// # Panics
    /// Panics if the sequence length does not match.
    pub fn energy_breakdown(
        &self,
        seq: &ProteinSequence,
        matrix: &ContactMatrix,
    ) -> EnergyBreakdown {
        assert_eq!(
            seq.len(),
            self.len(),
            "sequence/conformation length mismatch"
        );
        let interaction: f64 = self
            .contacts()
            .iter()
            .map(|&(i, j)| matrix.energy(seq.residue(i), seq.residue(j)))
            .sum();
        EnergyBreakdown {
            chirality: self.chirality_violations() as f64,
            geometry: 0.0,
            overlap: self.overlap_violations() as f64,
            interaction,
        }
    }

    /// Sanity invariant: all bonds have the lattice bond length.
    pub fn bonds_valid(&self) -> bool {
        self.positions
            .windows(2)
            .all(|w| dist_sq(w[0], w[1]) == BOND_LEN_SQ as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> ProteinSequence {
        ProteinSequence::parse(s).unwrap()
    }

    #[test]
    fn straight_zigzag_is_self_avoiding() {
        let c = Conformation::from_turns(vec![0, 1, 0, 1, 0]);
        assert!(c.is_self_avoiding());
        assert!(c.bonds_valid());
        assert_eq!(c.len(), 6);
        assert!(c.contacts().is_empty(), "extended chain has no contacts");
    }

    #[test]
    fn reversal_detected_as_chirality_violation() {
        let c = Conformation::from_turns(vec![0, 0, 1, 2]);
        assert_eq!(c.chirality_violations(), 1);
        assert!(!c.is_self_avoiding());
    }

    #[test]
    fn folded_chain_has_contacts() {
        // Search a small space for a self-avoiding conformation with ≥1
        // contact to prove the contact machinery fires.
        let enc = crate::encoding::TurnEncoding::new(7);
        let mut found = false;
        for bits in 0..enc.search_space() {
            let c = Conformation::from_turns(enc.decode(bits));
            if c.is_self_avoiding() && !c.contacts().is_empty() {
                for &(i, j) in &c.contacts() {
                    assert!(j - i >= 3);
                    assert_eq!(
                        (j - i) % 2,
                        1,
                        "diamond-lattice contacts are odd-separation"
                    );
                }
                found = true;
                break;
            }
        }
        assert!(found, "7-residue space must contain folded conformations");
    }

    #[test]
    fn interaction_energy_uses_mj_matrix() {
        let enc = crate::encoding::TurnEncoding::new(7);
        let matrix = ContactMatrix::miyazawa_jernigan();
        let hydrophobic = seq("IIIIIII");
        let polar = seq("SSSSSSS");
        // Find a contact-bearing conformation; hydrophobic sequence must
        // score lower (more negative) than polar on the same geometry.
        for bits in 0..enc.search_space() {
            let c = Conformation::from_turns(enc.decode(bits));
            if c.is_self_avoiding() && !c.contacts().is_empty() {
                let eh = c.energy_breakdown(&hydrophobic, matrix).interaction;
                let ep = c.energy_breakdown(&polar, matrix).interaction;
                assert!(
                    eh < ep,
                    "hydrophobic contacts must be stronger: {eh} vs {ep}"
                );
                return;
            }
        }
        panic!("no folded conformation found");
    }

    #[test]
    fn breakdown_total_weights() {
        let b = EnergyBreakdown {
            chirality: 2.0,
            geometry: 0.0,
            overlap: 1.0,
            interaction: -3.0,
        };
        let total = b.total(&Lambdas::default());
        assert_eq!(total, 0.0);
        let heavy = Lambdas {
            overlap: 10.0,
            ..Default::default()
        };
        assert_eq!(b.total(&heavy), 2.0 + 10.0 - 3.0);
    }

    #[test]
    fn compactness_measures() {
        let extended = Conformation::from_turns(vec![0, 1, 0, 1, 0, 1]);
        let enc = crate::encoding::TurnEncoding::new(7);
        // Find the most compact self-avoiding 7-mer.
        let mut best: Option<Conformation> = None;
        for bits in 0..enc.search_space() {
            let c = Conformation::from_turns(enc.decode(bits));
            if c.is_self_avoiding() {
                let better = match &best {
                    None => true,
                    Some(b) => c.radius_of_gyration() < b.radius_of_gyration(),
                };
                if better {
                    best = Some(c);
                }
            }
        }
        let compact = best.unwrap();
        assert!(compact.radius_of_gyration() < extended.radius_of_gyration());
        assert!(compact.end_to_end_sq() < extended.end_to_end_sq());
    }
}
