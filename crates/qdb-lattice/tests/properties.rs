//! Property-based tests for lattice-model invariants.

use proptest::prelude::*;
use qdb_lattice::amino::ALL_AMINO_ACIDS;
use qdb_lattice::conformation::Conformation;
use qdb_lattice::encoding::TurnEncoding;
use qdb_lattice::hamiltonian::{EnergyScale, FoldingHamiltonian};
use qdb_lattice::mj::ContactMatrix;
use qdb_lattice::sequence::ProteinSequence;
use qdb_lattice::tetra::{dist_sq, walk, BOND_LEN_SQ};

fn arb_sequence(len: std::ops::Range<usize>) -> impl Strategy<Value = ProteinSequence> {
    proptest::collection::vec(0usize..20, len).prop_map(|idx| {
        ProteinSequence::new(idx.into_iter().map(|i| ALL_AMINO_ACIDS[i]).collect()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every turn sequence walks with constant bond length.
    #[test]
    fn all_bonds_have_lattice_length(turns in proptest::collection::vec(0u8..4, 1..16)) {
        let pos = walk(&turns);
        for w in pos.windows(2) {
            prop_assert_eq!(dist_sq(w[0], w[1]), BOND_LEN_SQ as i64);
        }
    }

    /// Encode/decode is a bijection on the search space.
    #[test]
    fn encoding_bijective(n in 4usize..12, bits_seed in any::<u64>()) {
        let enc = TurnEncoding::new(n);
        let bits = bits_seed & (enc.search_space() - 1);
        let turns = enc.decode(bits);
        prop_assert_eq!(turns.len(), enc.num_bonds());
        prop_assert_eq!(enc.encode(&turns), bits);
    }

    /// Residue overlaps can only happen at even sequence separation
    /// (sublattice parity), so contacts are always odd-separation.
    #[test]
    fn overlaps_only_at_even_separation(turns in proptest::collection::vec(0u8..4, 3..14)) {
        let pos = walk(&turns);
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if pos[i] == pos[j] {
                    prop_assert_eq!((j - i) % 2, 0);
                }
                if dist_sq(pos[i], pos[j]) == BOND_LEN_SQ as i64 && j > i + 1 {
                    prop_assert_eq!((j - i) % 2, 1);
                }
            }
        }
    }

    /// The scaled energy decomposes exactly as
    /// offset + penalty·(violations) + interaction·E_MJ, and self-avoiding
    /// states pay zero penalty.
    #[test]
    fn energy_composition_exact(seq in arb_sequence(5..9), bits_seed in any::<u64>()) {
        let h = FoldingHamiltonian::new(
            seq,
            Default::default(),
            EnergyScale::calibrated(46),
        );
        let bits = bits_seed & ((1u64 << h.num_qubits()) - 1);
        let c = h.conformation_of(bits);
        let b = h.breakdown_of_bits(bits);
        let s = h.scale();
        let expect = s.offset
            + s.penalty * (b.chirality + b.overlap)
            + s.interaction * b.interaction;
        prop_assert!((h.energy_of_bits(bits) - expect).abs() < 1e-9);
        if c.is_self_avoiding() {
            prop_assert_eq!(b.chirality + b.overlap, 0.0);
        } else {
            prop_assert!(b.chirality + b.overlap >= 1.0);
        }
    }

    /// The breakdown terms are consistent with the conformation's own
    /// counts.
    #[test]
    fn breakdown_matches_counts(seq in arb_sequence(5..10), bits_seed in any::<u64>()) {
        let h = FoldingHamiltonian::with_unit_scale(seq);
        let bits = bits_seed & ((1u64 << h.num_qubits()) - 1);
        let c = h.conformation_of(bits);
        let b = h.breakdown_of_bits(bits);
        prop_assert_eq!(b.chirality as usize, c.chirality_violations());
        prop_assert_eq!(b.overlap as usize, c.overlap_violations());
        prop_assert_eq!(b.geometry, 0.0);
    }

    /// Contact energies are symmetric and finite for every pair.
    #[test]
    fn contact_matrix_total_function(a in 0usize..20, b in 0usize..20) {
        let m = ContactMatrix::miyazawa_jernigan();
        let (x, y) = (ALL_AMINO_ACIDS[a], ALL_AMINO_ACIDS[b]);
        prop_assert!(m.energy(x, y).is_finite());
        prop_assert_eq!(m.energy(x, y), m.energy(y, x));
    }

    /// Radius of gyration of any conformation is bounded by the extended
    /// chain's.
    #[test]
    fn gyration_bounded_by_extension(turns in proptest::collection::vec(0u8..4, 4..12)) {
        let c = Conformation::from_turns(turns.clone());
        let extended = Conformation::from_turns(
            (0..turns.len()).map(|i| (i % 2) as u8).collect(),
        );
        prop_assert!(c.radius_of_gyration() <= extended.radius_of_gyration() + 1e-9);
    }
}
