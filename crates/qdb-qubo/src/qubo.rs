//! The QUBO model: minimize `x^T Q x` over binary `x`.
//!
//! Stored as linear terms plus a sparse symmetric pair list, with an
//! optional *implicit* cardinality penalty `B (Σx − k)²`. Keeping the
//! cardinality term implicit matters: expanded, it couples every pair of
//! variables and would densify the adjacency from O(overlaps) to O(n²);
//! tracked via the ones-count it costs O(1) per flip instead.

/// A quadratic unconstrained binary optimization instance.
#[derive(Clone, Debug)]
pub struct Qubo {
    n: usize,
    linear: Vec<f64>,
    /// Unique upper-triangle couplings `(i, j, w)` with `i < j`.
    pairs: Vec<(u32, u32, f64)>,
    /// Both-direction adjacency for O(deg) flip deltas.
    adj: Vec<Vec<(u32, f64)>>,
    /// Implicit `weight · (Σx − k)²` term.
    cardinality: Option<(usize, f64)>,
}

impl Qubo {
    /// An empty instance over `n` binary variables.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            linear: vec![0.0; n],
            pairs: Vec::new(),
            adj: vec![Vec::new(); n],
            cardinality: None,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of explicit pair couplings.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Adds `w · x_i` (accumulates).
    pub fn add_linear(&mut self, i: usize, w: f64) {
        self.linear[i] += w;
    }

    /// Adds `w · x_i x_j` for `i ≠ j` (accumulates as a new entry).
    pub fn add_pair(&mut self, i: usize, j: usize, w: f64) {
        assert_ne!(i, j, "diagonal terms are linear (x² = x)");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.pairs.push((a as u32, b as u32, w));
        self.adj[a].push((b as u32, w));
        self.adj[b].push((a as u32, w));
    }

    /// Sets the implicit cardinality penalty `weight · (Σx − k)²`.
    pub fn set_cardinality(&mut self, k: usize, weight: f64) {
        self.cardinality = Some((k, weight));
    }

    /// The cardinality penalty, if set.
    pub fn cardinality(&self) -> Option<(usize, f64)> {
        self.cardinality
    }

    /// Full objective for an assignment (the brute-force reference the
    /// incremental flip deltas are property-tested against).
    pub fn energy(&self, bits: &[bool]) -> f64 {
        assert_eq!(bits.len(), self.n);
        let mut e = 0.0;
        for (i, &on) in bits.iter().enumerate() {
            if on {
                e += self.linear[i];
            }
        }
        for &(i, j, w) in &self.pairs {
            if bits[i as usize] && bits[j as usize] {
                e += w;
            }
        }
        if let Some((k, weight)) = self.cardinality {
            let ones = bits.iter().filter(|&&b| b).count() as f64;
            let d = ones - k as f64;
            e += weight * d * d;
        }
        e
    }

    /// Energy change from flipping variable `i`, given the current
    /// assignment and its ones-count. O(deg(i)).
    pub fn flip_delta(&self, bits: &[bool], ones: usize, i: usize) -> f64 {
        let sign = if bits[i] { -1.0 } else { 1.0 };
        let mut neighbor_sum = 0.0;
        for &(j, w) in &self.adj[i] {
            if bits[j as usize] {
                neighbor_sum += w;
            }
        }
        let mut delta = sign * (self.linear[i] + neighbor_sum);
        if let Some((k, weight)) = self.cardinality {
            let m = ones as f64 - k as f64;
            let m_new = m + sign;
            delta += weight * (m_new * m_new - m * m);
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_counts_active_terms() {
        let mut q = Qubo::new(3);
        q.add_linear(0, -2.0);
        q.add_linear(2, 1.0);
        q.add_pair(0, 1, 3.0);
        q.add_pair(0, 2, -1.0);
        assert_eq!(q.energy(&[false, false, false]), 0.0);
        assert_eq!(q.energy(&[true, false, false]), -2.0);
        assert_eq!(q.energy(&[true, true, false]), 1.0);
        assert_eq!(q.energy(&[true, false, true]), -2.0);
    }

    #[test]
    fn cardinality_penalizes_deviation_quadratically() {
        let mut q = Qubo::new(4);
        q.set_cardinality(2, 10.0);
        assert_eq!(q.energy(&[false; 4]), 40.0);
        assert_eq!(q.energy(&[true, true, false, false]), 0.0);
        assert_eq!(q.energy(&[true, true, true, false]), 10.0);
        assert_eq!(q.energy(&[true; 4]), 40.0);
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let mut q = Qubo::new(4);
        q.add_linear(0, -1.5);
        q.add_linear(3, 0.5);
        q.add_pair(0, 1, 2.0);
        q.add_pair(1, 2, -0.7);
        q.add_pair(2, 3, 1.1);
        q.set_cardinality(2, 5.0);
        let mut bits = vec![true, false, true, false];
        let ones = 2;
        for i in 0..4 {
            let before = q.energy(&bits);
            let delta = q.flip_delta(&bits, ones, i);
            bits[i] = !bits[i];
            let after = q.energy(&bits);
            bits[i] = !bits[i];
            assert!(
                (after - before - delta).abs() < 1e-12,
                "flip {i}: delta {delta} vs true {}",
                after - before
            );
        }
    }

    #[test]
    fn accumulated_pairs_sum() {
        let mut q = Qubo::new(2);
        q.add_pair(0, 1, 1.0);
        q.add_pair(1, 0, 2.0);
        assert_eq!(q.energy(&[true, true]), 3.0);
        assert_eq!(q.num_pairs(), 2);
    }
}
