//! # qdb-qubo
//!
//! QUBO-based ligand pose generation (the QUBODock formulation): the
//! binding site is discretized into candidate poses, pose selection is
//! written as a quadratic unconstrained binary optimization — grid-scored
//! linear terms, pose-overlap quadratic penalties, an implicit
//! cardinality term — and solved with a seeded simulated-annealing/tabu
//! sampler whose rayon-parallel restarts merge deterministically. Winning
//! samples are refined with `qdb-dock`'s local search and rescored with
//! the direct Vina energy, making the backend drop-in comparable with the
//! Monte-Carlo engine behind the same [`DockBackend`] seam.
//!
//! [`DockBackend`]: qdb_dock::backend::DockBackend

pub mod backend;
pub mod qubo;
pub mod sampler;

pub use backend::QuboDockBackend;
pub use qubo::Qubo;
pub use sampler::{anneal, AnnealConfig, Sample};
