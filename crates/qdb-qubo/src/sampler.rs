//! Seeded simulated-annealing / tabu sampler for [`Qubo`] instances.
//!
//! Restarts run rayon-parallel, each on its own `ChaCha8Rng` derived from
//! `(seed, restart)` via SplitMix64, and the per-restart winners are
//! merged with a total-order sort by `(energy, restart)` — so the sampler
//! is deterministic regardless of worker scheduling: same seed, same
//! instance ⇒ byte-identical samples.
//!
//! Within a restart: geometric temperature schedule, sequential variable
//! sweeps, Metropolis acceptance, and a tabu tenure per variable with the
//! standard aspiration exception (a tabu flip is allowed when it beats
//! the restart's best energy).

use crate::qubo::Qubo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Sampler configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnnealConfig {
    /// Independent restarts (rayon-parallel).
    pub restarts: usize,
    /// Full variable sweeps per restart.
    pub sweeps: usize,
    /// Initial Metropolis temperature.
    pub t_init: f64,
    /// Final temperature (geometric schedule).
    pub t_final: f64,
    /// Sweeps a flipped variable stays tabu.
    pub tabu_tenure: usize,
    /// Master seed; each restart derives its own stream.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            restarts: 8,
            sweeps: 200,
            t_init: 8.0,
            t_final: 0.05,
            tabu_tenure: 6,
            seed: 0,
        }
    }
}

/// One restart's best assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// The assignment.
    pub bits: Vec<bool>,
    /// Its exact energy (recomputed from scratch, not the incremental
    /// accumulator, so float drift cannot leak into results).
    pub energy: f64,
    /// Which restart produced it.
    pub restart: usize,
}

/// SplitMix64 — decorrelates per-restart seeds.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn initial_bits(q: &Qubo, rng: &mut ChaCha8Rng) -> Vec<bool> {
    let n = q.num_vars();
    match q.cardinality() {
        // Start feasible: exactly k ones at random positions.
        Some((k, _)) => {
            // Fisher-Yates with the restart's own stream (no SliceRandom,
            // keeps the dependency surface to plain `Rng`).
            let mut idx: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..i + 1);
                idx.swap(i, j);
            }
            let mut bits = vec![false; n];
            for &i in idx.iter().take(k.min(n)) {
                bits[i] = true;
            }
            bits
        }
        None => (0..n).map(|_| rng.gen::<bool>()).collect(),
    }
}

fn run_restart(q: &Qubo, cfg: &AnnealConfig, restart: usize) -> Sample {
    let n = q.num_vars();
    let mut rng =
        ChaCha8Rng::seed_from_u64(splitmix64(cfg.seed ^ (restart as u64).wrapping_mul(0x9E37)));
    let mut bits = initial_bits(q, &mut rng);
    let mut ones = bits.iter().filter(|&&b| b).count();
    let mut energy = q.energy(&bits);
    let mut best_bits = bits.clone();
    let mut best_energy = energy;
    // Sweep index at which each variable was last flipped (for tenure).
    let mut last_flip = vec![usize::MAX; n];

    let sweeps = cfg.sweeps.max(1);
    let ratio = if cfg.t_init > 0.0 {
        (cfg.t_final.max(1e-9) / cfg.t_init).max(1e-12)
    } else {
        1.0
    };
    for sweep in 0..sweeps {
        let frac = sweep as f64 / sweeps.max(2).saturating_sub(1) as f64;
        let temp = cfg.t_init * ratio.powf(frac);
        for i in 0..n {
            let delta = q.flip_delta(&bits, ones, i);
            let tabu =
                last_flip[i] != usize::MAX && sweep.saturating_sub(last_flip[i]) < cfg.tabu_tenure;
            let aspires = energy + delta < best_energy - 1e-12;
            if tabu && !aspires {
                continue;
            }
            let accept = delta <= 0.0 || (temp > 0.0 && rng.gen::<f64>() < (-delta / temp).exp());
            if accept {
                bits[i] = !bits[i];
                ones = if bits[i] { ones + 1 } else { ones - 1 };
                energy += delta;
                last_flip[i] = sweep;
                if energy < best_energy - 1e-12 {
                    best_energy = energy;
                    best_bits.copy_from_slice(&bits);
                }
            }
        }
    }
    polish(q, &mut best_bits);
    Sample {
        energy: q.energy(&best_bits),
        bits: best_bits,
        restart,
    }
}

/// Deterministic greedy descent on a restart's winner: single-flip
/// descent, plus best-improving 1↔0 swaps on cardinality-constrained
/// instances — a swap keeps the constraint feasible, where the two
/// single flips composing it would each pay the penalty barrier and be
/// rejected. Runs to a local optimum under both move classes.
fn polish(q: &Qubo, bits: &mut [bool]) {
    let n = bits.len();
    let mut ones = bits.iter().filter(|&&b| b).count();
    loop {
        let mut improved = false;
        for i in 0..n {
            if q.flip_delta(bits, ones, i) < -1e-12 {
                bits[i] = !bits[i];
                ones = if bits[i] { ones + 1 } else { ones - 1 };
                improved = true;
            }
        }
        if !improved && q.cardinality().is_some() {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                if !bits[i] {
                    continue;
                }
                let d1 = q.flip_delta(bits, ones, i);
                bits[i] = false;
                for j in 0..n {
                    if bits[j] || j == i {
                        continue;
                    }
                    let total = d1 + q.flip_delta(bits, ones - 1, j);
                    if total < best.map(|(_, _, d)| d).unwrap_or(-1e-12) {
                        best = Some((i, j, total));
                    }
                }
                bits[i] = true;
            }
            if let Some((i, j, _)) = best {
                bits[i] = false;
                bits[j] = true;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Runs all restarts and returns their winners sorted best-first by
/// `(energy, restart)` — a total order, so ties break deterministically.
pub fn anneal(q: &Qubo, cfg: &AnnealConfig) -> Vec<Sample> {
    let mut samples: Vec<Sample> = (0..cfg.restarts.max(1))
        .into_par_iter()
        .map(|r| run_restart(q, cfg, r))
        .collect();
    samples.sort_by(|a, b| {
        a.energy
            .total_cmp(&b.energy)
            .then(a.restart.cmp(&b.restart))
    });
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Qubo {
        // Optimum: pick the two negative-linear, non-conflicting vars.
        let mut q = Qubo::new(6);
        for i in 0..6 {
            q.add_linear(i, if i % 2 == 0 { -2.0 } else { 1.0 });
        }
        q.add_pair(0, 2, 10.0); // conflict between two attractive vars
        q.set_cardinality(2, 8.0);
        q
    }

    #[test]
    fn anneal_is_seed_deterministic() {
        let q = toy();
        let cfg = AnnealConfig {
            seed: 42,
            ..Default::default()
        };
        let a = anneal(&q, &cfg);
        let b = anneal(&q, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn anneal_finds_the_toy_optimum() {
        let q = toy();
        let cfg = AnnealConfig {
            seed: 7,
            ..Default::default()
        };
        let best = &anneal(&q, &cfg)[0];
        // Exhaustive check over all 64 assignments.
        let mut true_best = f64::INFINITY;
        for mask in 0u32..64 {
            let bits: Vec<bool> = (0..6).map(|i| mask >> i & 1 == 1).collect();
            true_best = true_best.min(q.energy(&bits));
        }
        assert!(
            (best.energy - true_best).abs() < 1e-9,
            "anneal {} vs exhaustive {}",
            best.energy,
            true_best
        );
    }

    #[test]
    fn samples_are_sorted_best_first() {
        let q = toy();
        let cfg = AnnealConfig {
            restarts: 5,
            seed: 3,
            ..Default::default()
        };
        let samples = anneal(&q, &cfg);
        assert_eq!(samples.len(), 5);
        for w in samples.windows(2) {
            assert!(w[0].energy <= w[1].energy);
        }
    }

    #[test]
    fn reported_energy_is_exact_not_accumulated() {
        let q = toy();
        let cfg = AnnealConfig {
            seed: 11,
            sweeps: 50,
            ..Default::default()
        };
        for s in anneal(&q, &cfg) {
            assert_eq!(s.energy, q.energy(&s.bits));
        }
    }
}
