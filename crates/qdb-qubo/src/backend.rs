//! QUBO pose generation (the QUBODock formulation) behind the
//! [`DockBackend`] seam.
//!
//! The binding site is discretized into candidate poses — a translation
//! lattice over the search box crossed with a small orientation set —
//! and pose selection becomes a QUBO: linear terms are the grid-scored
//! energies of each candidate, quadratic terms penalize selecting two
//! poses that overlap (RMSD below a threshold), and an implicit
//! cardinality term steers the sampler toward exactly `poses_per_run`
//! picks. The seeded annealer selects a diverse low-energy subset, and
//! each selected pose is then polished with the same compass-search local
//! refinement and direct rescoring the Vina engine uses — so affinities
//! from both backends live on the same scale.

use crate::qubo::Qubo;
use crate::sampler::{anneal, splitmix64, AnnealConfig};
use qdb_dock::backend::{require_finite_poses, BackendError, DockBackend, DockContext};
use qdb_dock::cluster::{cluster_poses, rmsd_upper_bound};
use qdb_dock::engine::{intra_pairs, DockParams, DockRun};
use qdb_dock::grid::GridMaps;
use qdb_dock::local::refine;
use qdb_dock::pose::Pose;
use qdb_dock::scoring::{affinity, intermolecular, intramolecular};
use qdb_dock::types::{retype_positions, type_ligand, type_receptor, AtomClass, TypedAtom};
use qdb_mol::geometry::{Quat, Vec3};
use qdb_mol::ligand::Ligand;
use qdb_mol::structure::Structure;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Grid energies are clamped to this band before entering the QUBO so a
/// single clashing candidate cannot flatten the annealer's temperature
/// scale.
const LINEAR_CLAMP: f64 = 50.0;

/// The QUBO docking backend.
#[derive(Clone, Copy, Debug)]
pub struct QuboDockBackend {
    /// Annealer restarts (rayon-parallel, deterministic merge).
    pub restarts: usize,
    /// Annealer sweeps per restart.
    pub sweeps: usize,
    /// Tabu tenure (sweeps).
    pub tabu_tenure: usize,
    /// Penalty for selecting two overlapping poses.
    pub overlap_weight: f64,
    /// Weight of the `(Σx − k)²` cardinality term.
    pub cardinality_weight: f64,
    /// Translation lattice points per axis (global mode).
    pub translations_per_axis: usize,
    /// Orientations per translation (fixed set + seeded fills).
    pub orientations: usize,
    /// Probe cap on QUBO size.
    pub max_vars: usize,
}

impl Default for QuboDockBackend {
    fn default() -> Self {
        Self {
            restarts: 6,
            sweeps: 150,
            tabu_tenure: 6,
            overlap_weight: 60.0,
            cardinality_weight: 60.0,
            translations_per_axis: 4,
            orientations: 8,
            max_vars: 4096,
        }
    }
}

/// Shoemake's uniform random unit quaternion.
fn random_orientation<R: Rng>(rng: &mut R) -> Quat {
    let u1: f64 = rng.gen();
    let u2: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let u3: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let a = (1.0 - u1).sqrt();
    let b = u1.sqrt();
    Quat::from_components(a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos())
}

impl QuboDockBackend {
    fn orientation_set(&self, params: &DockParams, rng: &mut ChaCha8Rng) -> Vec<Quat> {
        let axes = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let mut orientations = vec![Quat::IDENTITY];
        if params.local_only {
            // Small tilts around the native orientation.
            for axis in axes {
                for sign in [1.0, -1.0] {
                    orientations.push(Quat::from_axis_angle(axis, sign * 0.25));
                }
            }
        } else {
            for axis in axes {
                orientations.push(Quat::from_axis_angle(axis, std::f64::consts::FRAC_PI_2));
            }
            orientations.push(Quat::from_axis_angle(axes[0], std::f64::consts::PI));
        }
        while orientations.len() < self.orientations.max(1) {
            orientations.push(if params.local_only {
                // Seeded small perturbation instead of a full random spin.
                let axis = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                let axis = if axis.norm() < 1e-9 { axes[0] } else { axis };
                Quat::from_axis_angle(axis, rng.gen_range(-0.3..0.3))
            } else {
                random_orientation(rng)
            });
        }
        orientations.truncate(self.orientations.max(1));
        orientations
    }

    fn candidate_count(&self, params: &DockParams) -> usize {
        let per_axis = if params.local_only {
            3
        } else {
            self.translations_per_axis.max(1)
        };
        per_axis.pow(3) * self.orientations.max(1)
    }

    /// The discrete pose set: translation lattice × orientation set, with
    /// torsions at the template's rest angles (refinement explores them).
    fn candidate_poses(
        &self,
        params: &DockParams,
        native_center: Vec3,
        n_rot: usize,
        seed: u64,
    ) -> Vec<Pose> {
        let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(seed ^ 0xD0C_BA2E));
        let orientations = self.orientation_set(params, &mut rng);
        let lattice = |extent: f64, k: usize| -> Vec<f64> {
            if k <= 1 {
                vec![0.0]
            } else {
                (0..k)
                    .map(|i| -extent + 2.0 * extent * i as f64 / (k - 1) as f64)
                    .collect()
            }
        };
        let (center, per_axis, extents) = if params.local_only {
            (native_center, 3usize, Vec3::new(1.8, 1.8, 1.8))
        } else {
            // Same centroid bounds as the MC engine's random placement.
            (
                params.center,
                self.translations_per_axis.max(1),
                params.box_size * 0.35,
            )
        };
        let (xs, ys, zs) = (
            lattice(extents.x, per_axis),
            lattice(extents.y, per_axis),
            lattice(extents.z, per_axis),
        );
        let mut poses = Vec::with_capacity(xs.len() * ys.len() * zs.len() * orientations.len());
        for &ox in &xs {
            for &oy in &ys {
                for &oz in &zs {
                    for &orientation in &orientations {
                        poses.push(Pose {
                            position: center + Vec3::new(ox, oy, oz),
                            orientation,
                            torsions: vec![0.0; n_rot],
                        });
                    }
                }
            }
        }
        poses
    }
}

impl DockBackend for QuboDockBackend {
    fn name(&self) -> &'static str {
        "qubo"
    }

    fn probe(
        &self,
        _receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
    ) -> Result<(), BackendError> {
        if ligand.num_atoms() == 0 {
            return Err(BackendError::Unavailable {
                reason: "empty ligand".to_string(),
            });
        }
        if params.box_size.x <= 0.0 || params.box_size.y <= 0.0 || params.box_size.z <= 0.0 {
            return Err(BackendError::Unavailable {
                reason: "degenerate search box".to_string(),
            });
        }
        let vars = self.candidate_count(params);
        if vars > self.max_vars {
            return Err(BackendError::Unavailable {
                reason: format!("QUBO would need {vars} variables (cap {})", self.max_vars),
            });
        }
        Ok(())
    }

    fn dock(
        &self,
        receptor: &Structure,
        ligand: &Ligand,
        params: &DockParams,
        seed: u64,
        ctx: &DockContext<'_>,
    ) -> Result<DockRun, BackendError> {
        let telemetry = qdb_telemetry::global();
        telemetry.counter("dock.runs").inc();
        let m_energy_evals = telemetry.counter("dock.energy_evals");

        let receptor_atoms = type_receptor(receptor);
        let ligand_template = type_ligand(ligand);
        let pairs = intra_pairs(ligand);
        let n_rot = ligand.num_rotatable();
        let classes: Vec<AtomClass> = ligand_template.iter().map(|a| a.class()).collect();
        let grids = params.use_grids.then(|| {
            GridMaps::build(
                &receptor_atoms,
                &classes,
                params.center,
                params.box_size,
                params.spacing,
            )
        });
        if ctx.expired() {
            return Err(ctx.deadline_error());
        }

        let eval_inter = |atoms: &[TypedAtom]| -> f64 {
            match &grids {
                Some(g) => g.ligand_energy(atoms),
                None => intermolecular(atoms, &receptor_atoms),
            }
        };

        // --- Discretize: candidate poses and their grid-scored energies.
        let candidates = self.candidate_poses(params, ligand.centroid(), n_rot, seed);
        let mut kept: Vec<(Pose, Vec<Vec3>, f64)> = Vec::with_capacity(candidates.len());
        let mut nonfinite = 0u64;
        for pose in candidates {
            let coords = pose.apply(ligand);
            let atoms = retype_positions(&ligand_template, &coords);
            m_energy_evals.inc();
            let e = eval_inter(&atoms);
            if e.is_finite() {
                kept.push((pose, coords, e.clamp(-LINEAR_CLAMP, LINEAR_CLAMP)));
            } else {
                nonfinite += 1;
            }
        }
        if nonfinite > 0 {
            telemetry
                .counter("dock.backend.qubo.nonfinite_candidates")
                .add(nonfinite);
        }
        if kept.is_empty() {
            return Err(BackendError::Internal {
                message: "no finite-energy candidate poses on the grid".to_string(),
            });
        }
        telemetry
            .counter("dock.backend.qubo.candidates")
            .add(kept.len() as u64);
        if ctx.expired() {
            return Err(ctx.deadline_error());
        }

        // --- Assemble the QUBO: energies linear, overlaps quadratic,
        // cardinality implicit.
        let n = kept.len();
        let k = params.poses_per_run.clamp(1, n);
        let overlap_rmsd = (2.0 * params.min_rmsd).max(1.5);
        let mut q = Qubo::new(n);
        for (i, (_, _, e)) in kept.iter().enumerate() {
            q.add_linear(i, *e);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rmsd_upper_bound(&kept[i].1, &kept[j].1) < overlap_rmsd {
                    q.add_pair(i, j, self.overlap_weight);
                }
            }
        }
        q.set_cardinality(k, self.cardinality_weight);
        if ctx.expired() {
            return Err(ctx.deadline_error());
        }

        // --- Sample.
        let cfg = AnnealConfig {
            restarts: self.restarts,
            sweeps: self.sweeps,
            tabu_tenure: self.tabu_tenure,
            seed,
            ..Default::default()
        };
        let samples = {
            let _anneal_span = telemetry.span("dock.backend.qubo.anneal");
            anneal(&q, &cfg)
        };
        telemetry
            .counter("dock.backend.qubo.anneal_restarts")
            .add(cfg.restarts as u64);
        let best = samples.first().ok_or_else(|| BackendError::Internal {
            message: "annealer returned no samples".to_string(),
        })?;
        let mut selected: Vec<usize> = best
            .bits
            .iter()
            .enumerate()
            .filter_map(|(i, &on)| on.then_some(i))
            .collect();
        if selected.is_empty() {
            // Degenerate sample (can only happen with a hostile config):
            // fall back to the k best linear terms so the run still
            // reports poses.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| kept[a].2.total_cmp(&kept[b].2));
            selected = order.into_iter().take(k).collect();
        }

        // --- Refine winners with the shared local search and rescore with
        // the direct (interpolation-free) energy, exactly as the engine
        // does.
        let mut scored: Vec<(Vec<Vec3>, f64)> = Vec::with_capacity(selected.len());
        for idx in selected {
            if ctx.expired() {
                return Err(ctx.deadline_error());
            }
            let energy_of = |p: &Pose| {
                m_energy_evals.inc();
                let coords = p.apply(ligand);
                let atoms = retype_positions(&ligand_template, &coords);
                eval_inter(&atoms) + intramolecular(&atoms, &pairs)
            };
            let (refined, _) = refine(&kept[idx].0, energy_of, params.refine_evals);
            let coords = refined.apply(ligand);
            let atoms = retype_positions(&ligand_template, &coords);
            let e_inter = intermolecular(&atoms, &receptor_atoms);
            scored.push((coords, affinity(e_inter, n_rot)));
        }
        telemetry
            .counter("dock.poses_generated")
            .add(scored.len() as u64);
        let poses = cluster_poses(scored, params.min_rmsd, params.poses_per_run);
        telemetry
            .counter("dock.poses_reported")
            .add(poses.len() as u64);
        require_finite_poses(DockRun { seed, poses })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
    use qdb_mol::ligand::generate_ligand;
    use qdb_telemetry::{Clock, ManualClock};

    fn receptor(seq: &str) -> Structure {
        let s = 3.8 / (3.0f64).sqrt();
        let dirs = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.0, -1.0, -1.0),
            Vec3::new(-1.0, 1.0, -1.0),
        ];
        let mut p = Vec3::ZERO;
        let mut trace = vec![p];
        for i in 0..seq.len() - 1 {
            let d = dirs[i % 3] * if i % 2 == 0 { 1.0 } else { -1.0 };
            p += d * s;
            trace.push(p);
        }
        let specs: Vec<ResidueSpec> = seq
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "UNK".into(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        let mut s = build_peptide(&trace, &specs);
        s.center();
        s
    }

    fn fast_backend() -> QuboDockBackend {
        QuboDockBackend {
            restarts: 3,
            sweeps: 60,
            translations_per_axis: 3,
            orientations: 4,
            ..Default::default()
        }
    }

    #[test]
    fn qubo_docking_produces_finite_scored_poses() {
        let rec = receptor("LKDSVI");
        let lig = generate_ligand(42, 14);
        let params = DockParams::fast();
        let clock = ManualClock::new();
        let ctx = DockContext::unbounded(&clock);
        let run = fast_backend().dock(&rec, &lig, &params, 7, &ctx).unwrap();
        assert!(!run.poses.is_empty());
        assert!(run.poses.iter().all(|p| p.affinity.is_finite()));
        assert!(
            run.best_affinity() < 0.0,
            "refined pocket poses should bind, got {}",
            run.best_affinity()
        );
    }

    #[test]
    fn qubo_docking_is_byte_deterministic_per_seed() {
        let rec = receptor("LKDSV");
        let lig = generate_ligand(9, 12);
        let params = DockParams::fast();
        let clock = ManualClock::new();
        let ctx = DockContext::unbounded(&clock);
        let backend = fast_backend();
        let a = backend.dock(&rec, &lig, &params, 3, &ctx).unwrap();
        let b = backend.dock(&rec, &lig, &params, 3, &ctx).unwrap();
        assert_eq!(a.poses.len(), b.poses.len());
        for (pa, pb) in a.poses.iter().zip(b.poses.iter()) {
            assert_eq!(pa.coords, pb.coords, "coords must match bit-for-bit");
            assert_eq!(pa.affinity.to_bits(), pb.affinity.to_bits());
        }
        // A different seed must still produce a valid, finite run. (It
        // may legitimately converge to the same optimum — the sampler's
        // greedy polish pulls every restart toward the pocket minimum —
        // so byte-equality across seeds is not asserted either way.)
        let c = backend.dock(&rec, &lig, &params, 4, &ctx).unwrap();
        assert!(!c.poses.is_empty());
        assert!(c.poses.iter().all(|p| p.affinity.is_finite()));
    }

    #[test]
    fn expired_deadline_is_detected_cooperatively() {
        let rec = receptor("LKDSV");
        let lig = generate_ligand(9, 12);
        let params = DockParams::fast();
        let clock = ManualClock::new();
        let ctx = DockContext {
            clock: &clock,
            deadline_ms: Some(10),
            started_ns: clock.now_ns(),
        };
        clock.advance_ms(11);
        let err = fast_backend()
            .dock(&rec, &lig, &params, 3, &ctx)
            .unwrap_err();
        assert_eq!(err.kind(), "deadline-exceeded");
    }

    #[test]
    fn probe_caps_the_qubo_size() {
        let rec = receptor("LKDSV");
        let lig = generate_ligand(9, 12);
        let params = DockParams::fast();
        let mut backend = fast_backend();
        backend.max_vars = 10;
        let err = backend.probe(&rec, &lig, &params).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
    }

    #[test]
    fn local_mode_keeps_candidates_near_the_native_site() {
        let rec = receptor("LKDSVI");
        let mut lig = generate_ligand(42, 14);
        let c = lig.centroid();
        lig.translate(-c);
        lig.translate(Vec3::new(4.0, 0.0, 0.0));
        let mut params = DockParams::fast();
        params.local_only = true;
        params.center = lig.centroid();
        let clock = ManualClock::new();
        let ctx = DockContext::unbounded(&clock);
        let run = fast_backend().dock(&rec, &lig, &params, 5, &ctx).unwrap();
        assert!(!run.poses.is_empty());
        for pose in &run.poses {
            let centroid = pose
                .coords
                .iter()
                .fold(Vec3::ZERO, |acc, &p| acc + p / pose.coords.len() as f64);
            assert!(
                centroid.distance(lig.centroid()) < 8.0,
                "local-mode pose wandered {:.1} Å",
                centroid.distance(lig.centroid())
            );
        }
    }
}
