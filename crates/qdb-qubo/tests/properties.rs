//! Property tests for the QUBO model and sampler (ISSUE 8 satellites):
//! incremental flip deltas against brute-force energies on ≤12-variable
//! instances, exhaustive-optimum recovery, and seeded determinism.

use proptest::prelude::*;
use qdb_qubo::{anneal, AnnealConfig, Qubo};

/// An arbitrary small QUBO: ≤12 vars, a handful of couplings, optional
/// cardinality term.
fn arb_qubo() -> impl Strategy<Value = Qubo> {
    (
        2usize..=12,
        proptest::collection::vec(-10.0f64..10.0, 12),
        proptest::collection::vec((0usize..12, 0usize..12, -10.0f64..10.0), 0..20),
        (any::<bool>(), 0usize..6, 0.1f64..20.0).prop_map(|(on, k, w)| on.then_some((k, w))),
    )
        .prop_map(|(n, linear, pairs, cardinality)| {
            let mut q = Qubo::new(n);
            for (i, w) in linear.iter().take(n).enumerate() {
                q.add_linear(i, *w);
            }
            for (i, j, w) in pairs {
                let (i, j) = (i % n, j % n);
                if i != j {
                    q.add_pair(i, j, w);
                }
            }
            if let Some((k, w)) = cardinality {
                q.set_cardinality(k.min(n), w);
            }
            q
        })
}

fn exhaustive_best(q: &Qubo) -> (Vec<bool>, f64) {
    let n = q.num_vars();
    let mut best_bits = vec![false; n];
    let mut best_e = q.energy(&best_bits);
    for mask in 1u32..(1u32 << n) {
        let bits: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        let e = q.energy(&bits);
        if e < best_e {
            best_e = e;
            best_bits = bits;
        }
    }
    (best_bits, best_e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The O(deg) incremental flip delta must equal the brute-force
    /// energy difference for every variable of every assignment visited.
    #[test]
    fn flip_delta_equals_energy_difference(q in arb_qubo(), mask in any::<u32>()) {
        let n = q.num_vars();
        let mut bits: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        let ones = bits.iter().filter(|&&b| b).count();
        for i in 0..n {
            let before = q.energy(&bits);
            let delta = q.flip_delta(&bits, ones, i);
            bits[i] = !bits[i];
            let after = q.energy(&bits);
            bits[i] = !bits[i];
            prop_assert!(
                (after - before - delta).abs() < 1e-9,
                "var {}: delta {} vs true {}", i, delta, after - before
            );
        }
    }

    /// On ≤12-variable instances the sampler's best energy must match the
    /// exhaustive optimum (the annealer has vastly more than 2^12 moves).
    #[test]
    fn sampler_recovers_the_exhaustive_optimum(q in arb_qubo(), seed in any::<u64>()) {
        let cfg = AnnealConfig { seed, restarts: 6, sweeps: 300, ..Default::default() };
        let best = &anneal(&q, &cfg)[0];
        let (_, true_best) = exhaustive_best(&q);
        prop_assert!(
            (best.energy - true_best).abs() < 1e-9,
            "anneal {} vs exhaustive {}", best.energy, true_best
        );
        // And the reported energy is self-consistent.
        prop_assert_eq!(best.energy, q.energy(&best.bits));
    }

    /// Same seed ⇒ byte-identical samples; the merge over parallel
    /// restarts must not leak scheduling order.
    #[test]
    fn sampler_is_seed_deterministic(q in arb_qubo(), seed in any::<u64>()) {
        let cfg = AnnealConfig { seed, restarts: 4, sweeps: 80, ..Default::default() };
        let a = anneal(&q, &cfg);
        let b = anneal(&q, &cfg);
        prop_assert_eq!(a, b);
    }

    /// With a feasible cardinality constraint and a dominant weight, the
    /// best sample selects exactly k variables.
    #[test]
    fn dominant_cardinality_is_respected(
        n in 4usize..=10,
        k in 1usize..=3,
        seed in any::<u64>(),
        linear in proptest::collection::vec(-1.0f64..1.0, 10),
    ) {
        let mut q = Qubo::new(n);
        for (i, w) in linear.iter().take(n).enumerate() {
            q.add_linear(i, *w);
        }
        q.set_cardinality(k.min(n), 100.0);
        let cfg = AnnealConfig { seed, restarts: 4, sweeps: 200, ..Default::default() };
        let best = &anneal(&q, &cfg)[0];
        let ones = best.bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(ones, k.min(n));
    }
}
