//! Drug-like ligands with torsion trees, and a seeded synthetic generator.
//!
//! The paper docks each fragment against its native PDBbind ligand. We
//! cannot ship PDBbind, so each target gets a deterministic synthetic
//! ligand (DESIGN.md §1): a tree-shaped small molecule of 8–24 heavy atoms
//! with drug-like element composition and 1–8 rotatable bonds, grown atom
//! by atom with clash avoidance. The same PDB id always yields the same
//! ligand, bit for bit.

use crate::element::Element;
use crate::geometry::{rotate_about_axis, Vec3};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One ligand heavy atom.
#[derive(Clone, Debug, PartialEq)]
pub struct LigandAtom {
    /// Element.
    pub element: Element,
    /// Position (Å).
    pub pos: Vec3,
    /// Hydrogen-bond donor flag (N with implicit H, O-H).
    pub donor: bool,
    /// Hydrogen-bond acceptor flag (N, O, F).
    pub acceptor: bool,
}

/// A rotatable bond: rotating `moving` atoms about the `a → b` axis.
#[derive(Clone, Debug, PartialEq)]
pub struct Torsion {
    /// Fixed-side atom of the axis.
    pub a: usize,
    /// Moving-side atom of the axis.
    pub b: usize,
    /// Indices of atoms displaced by this torsion (the subtree behind `b`).
    pub moving: Vec<usize>,
}

/// A small molecule with explicit connectivity and torsion tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Ligand {
    /// Heavy atoms.
    pub atoms: Vec<LigandAtom>,
    /// Bonds as index pairs (tree topology: `n − 1` bonds).
    pub bonds: Vec<(usize, usize)>,
    /// Rotatable bonds in application order.
    pub torsions: Vec<Torsion>,
}

/// Typical single-bond length between heavy atoms (Å).
const BOND_LEN: f64 = 1.5;
/// Minimum non-bonded separation while growing (Å).
const CLASH_DIST: f64 = 2.2;

impl Ligand {
    /// Number of heavy atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of active torsions (AutoDock's `N_rot`).
    pub fn num_rotatable(&self) -> usize {
        self.torsions.len()
    }

    /// Atom positions.
    pub fn positions(&self) -> Vec<Vec3> {
        self.atoms.iter().map(|a| a.pos).collect()
    }

    /// Geometric centroid.
    pub fn centroid(&self) -> Vec3 {
        let n = self.atoms.len().max(1) as f64;
        self.atoms.iter().fold(Vec3::ZERO, |acc, a| acc + a.pos / n)
    }

    /// Translates all atoms.
    pub fn translate(&mut self, delta: Vec3) {
        for a in &mut self.atoms {
            a.pos += delta;
        }
    }

    /// Returns a copy with torsion `idx` rotated by `angle` radians.
    pub fn with_torsion(&self, idx: usize, angle: f64) -> Ligand {
        let mut out = self.clone();
        out.apply_torsion(idx, angle);
        out
    }

    /// Rotates torsion `idx` by `angle` radians in place.
    pub fn apply_torsion(&mut self, idx: usize, angle: f64) {
        let torsion = self.torsions[idx].clone();
        let origin = self.atoms[torsion.a].pos;
        let axis = self.atoms[torsion.b].pos - origin;
        for &m in &torsion.moving {
            self.atoms[m].pos = rotate_about_axis(self.atoms[m].pos, origin, axis, angle);
        }
    }

    /// Longest interatomic distance (ligand diameter).
    pub fn diameter(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.atoms.len() {
            for j in (i + 1)..self.atoms.len() {
                best = best.max(self.atoms[i].pos.distance(self.atoms[j].pos));
            }
        }
        best
    }

    /// Checks that every bond has a plausible length.
    pub fn bonds_ok(&self, tol: f64) -> bool {
        self.bonds
            .iter()
            .all(|&(a, b)| (self.atoms[a].pos.distance(self.atoms[b].pos) - BOND_LEN).abs() <= tol)
    }
}

fn pick_element<R: Rng>(rng: &mut R) -> Element {
    let roll: f64 = rng.gen();
    if roll < 0.68 {
        Element::C
    } else if roll < 0.82 {
        Element::O
    } else if roll < 0.94 {
        Element::N
    } else if roll < 0.97 {
        Element::S
    } else {
        Element::F
    }
}

fn hb_flags(element: Element) -> (bool, bool) {
    match element {
        Element::N => (true, true),
        Element::O => (true, true),
        Element::F => (false, true),
        _ => (false, false),
    }
}

/// Generates a deterministic drug-like ligand from a seed.
///
/// The molecule is a random tree grown with uniform-sphere directions,
/// clash rejection, and drug-like element frequencies; size scales with
/// `heavy_atoms` (clamped to 8–24).
pub fn generate_ligand(seed: u64, heavy_atoms: usize) -> Ligand {
    let target = heavy_atoms.clamp(8, 24);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut atoms: Vec<LigandAtom> = Vec::with_capacity(target);
    let mut bonds: Vec<(usize, usize)> = Vec::new();
    let mut children: Vec<Vec<usize>> = Vec::new();

    let root_el = Element::C;
    let (donor, acceptor) = hb_flags(root_el);
    atoms.push(LigandAtom {
        element: root_el,
        pos: Vec3::ZERO,
        donor,
        acceptor,
    });
    children.push(Vec::new());

    while atoms.len() < target {
        // Prefer extending chain ends (fewer children) for drug-like shapes.
        let parent = {
            let mut candidates: Vec<usize> = (0..atoms.len())
                .filter(|&i| children[i].len() < 3)
                .collect();
            if candidates.is_empty() {
                candidates = (0..atoms.len()).collect();
            }
            candidates.sort_by_key(|&i| children[i].len());
            let span = candidates.len().min(3);
            candidates[rng.gen_range(0..span)]
        };
        // Try a few directions until clash-free.
        let mut placed = false;
        for _ in 0..24 {
            // Uniform direction on the sphere.
            let z: f64 = rng.gen_range(-1.0..1.0);
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = (1.0 - z * z).max(0.0).sqrt();
            let dir = Vec3::new(r * phi.cos(), r * phi.sin(), z);
            let pos = atoms[parent].pos + dir * BOND_LEN;
            let clash = atoms
                .iter()
                .enumerate()
                .any(|(i, a)| i != parent && a.pos.distance(pos) < CLASH_DIST);
            if !clash {
                let element = pick_element(&mut rng);
                let (donor, acceptor) = hb_flags(element);
                let idx = atoms.len();
                atoms.push(LigandAtom {
                    element,
                    pos,
                    donor,
                    acceptor,
                });
                children.push(Vec::new());
                children[parent].push(idx);
                bonds.push((parent, idx));
                placed = true;
                break;
            }
        }
        if !placed {
            break; // saturated — accept the smaller molecule
        }
    }

    // Torsions: every bond whose far side subtree has ≥ 2 atoms and whose
    // near side isn't a leaf, capped at 8 (Vina's practical range).
    let subtree = |start: usize, blocked: usize| -> Vec<usize> {
        let mut stack = vec![start];
        let mut seen = vec![start];
        while let Some(u) = stack.pop() {
            for &(a, b) in &bonds {
                let next = if a == u {
                    b
                } else if b == u {
                    a
                } else {
                    continue;
                };
                if next == blocked || seen.contains(&next) {
                    continue;
                }
                seen.push(next);
                stack.push(next);
            }
        }
        seen
    };
    let mut torsions = Vec::new();
    for &(a, b) in &bonds {
        if torsions.len() >= 8 {
            break;
        }
        let moving = subtree(b, a);
        if moving.len() >= 2 && moving.len() <= atoms.len() - 2 {
            torsions.push(Torsion { a, b, moving });
        }
    }

    Ligand {
        atoms,
        bonds,
        torsions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_ligand(1234, 16);
        let b = generate_ligand(1234, 16);
        assert_eq!(a, b);
        let c = generate_ligand(1235, 16);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn tree_topology_and_geometry() {
        for seed in [1u64, 7, 42, 999] {
            let l = generate_ligand(seed, 18);
            assert!(l.num_atoms() >= 8, "at least the minimum size");
            assert_eq!(l.bonds.len(), l.num_atoms() - 1, "tree has n-1 bonds");
            assert!(l.bonds_ok(1e-9));
            // No steric clash between non-bonded atoms.
            for i in 0..l.num_atoms() {
                for j in (i + 1)..l.num_atoms() {
                    if l.bonds.contains(&(i, j)) || l.bonds.contains(&(j, i)) {
                        continue;
                    }
                    assert!(
                        l.atoms[i].pos.distance(l.atoms[j].pos) > CLASH_DIST - 1e-9,
                        "seed {seed}: clash between {i} and {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn has_hb_capable_atoms_and_torsions() {
        let l = generate_ligand(2024, 20);
        assert!(l.num_rotatable() >= 1, "drug-like ligand should rotate");
        assert!(l.num_rotatable() <= 8);
        let hb = l.atoms.iter().filter(|a| a.donor || a.acceptor).count();
        assert!(hb >= 1, "element mix should include N/O at size 20");
    }

    #[test]
    fn torsion_preserves_bond_lengths() {
        let l = generate_ligand(5, 16);
        for t in 0..l.num_rotatable() {
            let rotated = l.with_torsion(t, 1.1);
            assert!(rotated.bonds_ok(1e-9), "torsion {t} broke a bond");
            // Atoms outside the moving set stay put.
            let moving = &l.torsions[t].moving;
            for i in 0..l.num_atoms() {
                if !moving.contains(&i) {
                    assert!((rotated.atoms[i].pos - l.atoms[i].pos).norm() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn torsion_round_trip() {
        let l = generate_ligand(77, 14);
        if l.num_rotatable() == 0 {
            return;
        }
        let there = l.with_torsion(0, 0.8);
        let back = there.with_torsion(0, -0.8);
        for (a, b) in l.atoms.iter().zip(&back.atoms) {
            assert!((a.pos - b.pos).norm() < 1e-9);
        }
    }

    #[test]
    fn translate_moves_centroid() {
        let mut l = generate_ligand(3, 12);
        let c0 = l.centroid();
        l.translate(Vec3::new(1.0, 2.0, 3.0));
        assert!((l.centroid() - c0 - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-12);
    }
}
