//! PDB format reading and writing (paper §7.1: "All PDB files in QDockBank
//! adhere strictly to the PDB format specification").

use crate::element::Element;
use crate::geometry::Vec3;
use crate::structure::{Atom, Residue, Structure};
use std::fmt::Write as _;

/// Errors from PDB parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PdbError {
    /// A line was shorter than the fixed-column format requires.
    ShortLine(usize),
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: &'static str },
}

impl std::fmt::Display for PdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdbError::ShortLine(n) => write!(f, "line {n}: ATOM record too short"),
            PdbError::BadNumber { line, field } => {
                write!(f, "line {line}: cannot parse {field}")
            }
        }
    }
}

impl std::error::Error for PdbError {}

/// Formats an atom name into PDB columns 13–16 (element-aligned).
fn format_atom_name(name: &str) -> String {
    // One/two-letter element names start in column 14 when the name is
    // ≤ 3 characters (standard convention).
    if name.len() >= 4 {
        format!("{name:<4}")
    } else {
        format!(" {name:<3}")
    }
}

/// Serializes a structure to PDB text (ATOM records + TER + END).
pub fn write_pdb(s: &Structure) -> String {
    let mut out = String::new();
    let mut serial = 1usize;
    for res in &s.residues {
        for atom in &res.atoms {
            let p = atom.pos;
            let _ = writeln!(
                out,
                "ATOM  {serial:>5} {name}{alt}{res:<3} {chain}{seq:>4}{icode}   {x:>8.3}{y:>8.3}{z:>8.3}{occ:>6.2}{b:>6.2}          {el:>2}",
                serial = serial,
                name = format_atom_name(&atom.name),
                alt = ' ',
                res = res.name,
                chain = s.chain_id,
                seq = res.seq_num,
                icode = ' ',
                x = p.x,
                y = p.y,
                z = p.z,
                occ = 1.0,
                b = 0.0,
                el = atom.element.symbol(),
            );
            serial += 1;
        }
    }
    if let Some(last) = s.residues.last() {
        let _ = writeln!(
            out,
            "TER   {serial:>5}      {res:<3} {chain}{seq:>4}",
            serial = serial,
            res = last.name,
            chain = s.chain_id,
            seq = last.seq_num,
        );
    }
    out.push_str("END\n");
    out
}

fn parse_f64(
    line: &str,
    range: std::ops::Range<usize>,
    lineno: usize,
    field: &'static str,
) -> Result<f64, PdbError> {
    line.get(range)
        .map(str::trim)
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or(PdbError::BadNumber {
            line: lineno,
            field,
        })
}

/// Parses ATOM/HETATM records into a structure (single chain assumed; the
/// chain id of the first record wins).
pub fn parse_pdb(text: &str) -> Result<Structure, PdbError> {
    let mut structure = Structure::new();
    let mut chain_set = false;
    for (lineno, line) in text.lines().enumerate() {
        let is_atom = line.starts_with("ATOM  ") || line.starts_with("HETATM");
        if !is_atom {
            continue;
        }
        if line.len() < 54 {
            return Err(PdbError::ShortLine(lineno + 1));
        }
        let name = line[12..16].trim().to_string();
        let res_name = line[17..20].trim().to_string();
        let chain = line.as_bytes()[21] as char;
        let seq_num = line
            .get(22..26)
            .map(str::trim)
            .and_then(|s| s.parse::<i32>().ok())
            .ok_or(PdbError::BadNumber {
                line: lineno + 1,
                field: "resSeq",
            })?;
        let x = parse_f64(line, 30..38, lineno + 1, "x")?;
        let y = parse_f64(line, 38..46, lineno + 1, "y")?;
        let z = parse_f64(line, 46..54, lineno + 1, "z")?;
        let element = line
            .get(76..78)
            .and_then(Element::from_symbol)
            .or_else(|| Element::from_symbol(&name[..1]))
            .unwrap_or(Element::C);

        if !chain_set {
            structure.chain_id = chain;
            chain_set = true;
        }
        let need_new = structure
            .residues
            .last()
            .map(|r| r.seq_num != seq_num || r.name != res_name)
            .unwrap_or(true);
        if need_new {
            structure.residues.push(Residue::new(&res_name, seq_num));
        }
        structure
            .residues
            .last_mut()
            .expect("just pushed")
            .atoms
            .push(Atom::new(&name, element, Vec3::new(x, y, z)));
    }
    Ok(structure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Structure {
        let mut s = Structure::new();
        let mut r = Residue::new("LEU", 47);
        r.atoms
            .push(Atom::new("N", Element::N, Vec3::new(1.234, -5.678, 9.012)));
        r.atoms
            .push(Atom::new("CA", Element::C, Vec3::new(2.5, 0.0, -1.75)));
        r.atoms
            .push(Atom::new("CB", Element::C, Vec3::new(3.125, 1.0, -2.0)));
        s.residues.push(r);
        let mut r2 = Residue::new("ASP", 48);
        r2.atoms
            .push(Atom::new("N", Element::N, Vec3::new(0.0, 0.0, 0.0)));
        r2.atoms
            .push(Atom::new("CA", Element::C, Vec3::new(1.1, 2.2, 3.3)));
        s.residues.push(r2);
        s
    }

    #[test]
    fn write_format_columns() {
        let text = write_pdb(&toy());
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("ATOM      1  N   LEU A  47"));
        // Coordinates occupy fixed columns 31–54.
        assert_eq!(&first[30..38], "   1.234");
        assert_eq!(&first[38..46], "  -5.678");
        assert_eq!(&first[46..54], "   9.012");
        assert!(text.contains("TER"));
        assert!(text.trim_end().ends_with("END"));
    }

    #[test]
    fn round_trip() {
        let original = toy();
        let parsed = parse_pdb(&write_pdb(&original)).unwrap();
        assert_eq!(parsed.len(), original.len());
        assert_eq!(parsed.chain_id, original.chain_id);
        for (a, b) in original.residues.iter().zip(&parsed.residues) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.seq_num, b.seq_num);
            assert_eq!(a.atoms.len(), b.atoms.len());
            for (x, y) in a.atoms.iter().zip(&b.atoms) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.element, y.element);
                assert!(
                    (x.pos - y.pos).norm() < 1e-3,
                    "coords preserved to 3 decimals"
                );
            }
        }
    }

    #[test]
    fn parse_rejects_garbage_numbers() {
        let bad = "ATOM      1  N   LEU A  47     abcdefgh  -5.678   9.012\n";
        assert!(matches!(
            parse_pdb(bad),
            Err(PdbError::BadNumber { field: "x", .. })
        ));
    }

    #[test]
    fn parse_skips_non_atom_records() {
        let text = format!(
            "HEADER    QDOCKBANK TEST\nREMARK 1  blah\n{}CONECT    1    2\n",
            write_pdb(&toy())
        );
        let parsed = parse_pdb(&text).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn four_char_atom_names() {
        let mut s = Structure::new();
        let mut r = Residue::new("LIG", 1);
        r.atoms.push(Atom::new("HD11", Element::H, Vec3::ZERO));
        s.residues.push(r);
        let text = write_pdb(&s);
        let parsed = parse_pdb(&text).unwrap();
        assert_eq!(parsed.residues[0].atoms[0].name, "HD11");
    }
}
