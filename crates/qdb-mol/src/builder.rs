//! Atomic reconstruction: Cα trace → full-backbone peptide (paper §4.3.3).
//!
//! The coarse-grained lattice prediction gives one point per residue. We
//! rebuild N/CA/C/O (+ CB and a coarse side-chain pseudo-atom) with exact
//! standard bond lengths: along each Cα–Cα virtual bond the carbonyl C and
//! the next amide N sit off-axis at a height `h` chosen so that
//!
//! `√(1.525² − h²) + √(1.458² − h²) = 3.8 − 1.329`
//!
//! which makes CA–C, N–CA and the C–N peptide bond all exact. This is the
//! role Open Babel / template fitting plays in the paper's pipeline.

use crate::element::Element;
use crate::geometry::Vec3;
use crate::structure::{Atom, Residue, Structure};

/// Standard backbone bond lengths (Å).
pub const N_CA: f64 = 1.458;
/// CA–C bond.
pub const CA_C: f64 = 1.525;
/// Peptide C–N bond.
pub const C_N: f64 = 1.329;
/// Carbonyl C=O.
pub const C_O: f64 = 1.231;
/// CA–CB bond.
pub const CA_CB: f64 = 1.53;

/// Solves for the off-axis height `h` (see module docs) by bisection.
fn solve_height(ca_ca: f64) -> f64 {
    let target = ca_ca - C_N;
    let f = |h: f64| (CA_C * CA_C - h * h).sqrt() + (N_CA * N_CA - h * h).sqrt() - target;
    let (mut lo, mut hi) = (0.0f64, N_CA - 1e-9);
    assert!(
        f(lo) > 0.0,
        "trace spacing {ca_ca} too long for peptide geometry"
    );
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Per-residue metadata the builder needs: three-letter name and a coarse
/// side-chain classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SideChainClass {
    /// Glycine: no CB.
    None,
    /// Small apolar: CB only.
    Small,
    /// Large hydrophobic: CB + carbon pseudo-atom.
    Hydrophobic,
    /// H-bond donor/acceptor nitrogen tip (K, R, H, W).
    PolarN,
    /// H-bond acceptor oxygen tip (D, E, N, Q, S, T, Y).
    PolarO,
    /// Sulfur tip (C, M).
    Sulfur,
}

/// Residue spec for reconstruction.
#[derive(Clone, Debug)]
pub struct ResidueSpec {
    /// Three-letter name written to the PDB.
    pub name: String,
    /// PDB residue number.
    pub seq_num: i32,
    /// Side-chain class.
    pub side_chain: SideChainClass,
}

/// Classifies a one-letter code into a coarse side-chain class.
pub fn classify_side_chain(one_letter: char) -> SideChainClass {
    match one_letter.to_ascii_uppercase() {
        'G' => SideChainClass::None,
        'A' | 'P' | 'V' => SideChainClass::Small,
        'L' | 'I' | 'F' => SideChainClass::Hydrophobic,
        'K' | 'R' | 'H' | 'W' => SideChainClass::PolarN,
        'D' | 'E' | 'N' | 'Q' | 'S' | 'T' | 'Y' => SideChainClass::PolarO,
        'C' | 'M' => SideChainClass::Sulfur,
        _ => SideChainClass::Small,
    }
}

fn perpendicular_component(v: Vec3, axis: Vec3) -> Option<Vec3> {
    let p = v - axis * v.dot(axis);
    (p.norm() > 1e-6).then(|| p.normalized())
}

/// Builds a full-backbone structure from a Cα trace.
///
/// # Panics
/// Panics if the trace and specs disagree in length, the trace has fewer
/// than 2 residues, or consecutive Cα spacing exceeds what peptide
/// geometry allows (> 4.3 Å).
pub fn build_peptide(trace: &[Vec3], specs: &[ResidueSpec]) -> Structure {
    assert_eq!(trace.len(), specs.len(), "trace/spec length mismatch");
    assert!(trace.len() >= 2, "need at least two residues");
    let n = trace.len();

    // Extend the trace with one virtual Cα at each end (tetrahedral
    // continuation of the chain) so terminal residues go through exactly
    // the same frame machinery as interior ones.
    let cos_t = 1.0 / 3.0;
    let sin_t = (8.0f64).sqrt() / 3.0;
    let first_dir = (trace[1] - trace[0]).normalized();
    let first_perp = if n > 2 {
        perpendicular_component(trace[2] - trace[1], first_dir)
            .unwrap_or_else(|| first_dir.any_perpendicular())
    } else {
        first_dir.any_perpendicular()
    };
    let last_dir = (trace[n - 1] - trace[n - 2]).normalized();
    let last_perp = if n > 2 {
        perpendicular_component(trace[n - 3] - trace[n - 2], last_dir)
            .unwrap_or_else(|| last_dir.any_perpendicular())
    } else {
        last_dir.any_perpendicular()
    };
    let mut ext: Vec<Vec3> = Vec::with_capacity(n + 2);
    ext.push(trace[0] + (-first_dir * cos_t + first_perp * sin_t).normalized() * 3.8);
    ext.extend_from_slice(trace);
    ext.push(trace[n - 1] + (last_dir * cos_t + last_perp * sin_t).normalized() * 3.8);

    // Bond frames over the extended trace. Every bond's off-axis direction
    // `up_i` has one rotational degree of freedom about the bond axis —
    // exactly the freedom real peptides spend via φ/ψ. A greedy forward
    // pass picks each `up_i` from a fine grid to drive its residue's
    // N–CA–C angle to the ideal 111°, given the already-fixed incoming
    // frame. This keeps all bond lengths exact while producing plausible
    // angles on arbitrary traces (verified in tests).
    let t: Vec<Vec3> = ext.windows(2).map(|w| (w[1] - w[0]).normalized()).collect();
    let nb = t.len();
    let lens: Vec<f64> = ext.windows(2).map(|w| (w[1] - w[0]).norm()).collect();
    let heights: Vec<f64> = lens.iter().map(|&l| solve_height(l)).collect();
    let xns: Vec<f64> = heights
        .iter()
        .map(|&h| (N_CA * N_CA - h * h).sqrt())
        .collect();
    let xcs: Vec<f64> = heights
        .iter()
        .map(|&h| (CA_C * CA_C - h * h).sqrt())
        .collect();

    let mut up: Vec<Vec3> = Vec::with_capacity(nb);
    // Virtual first bond: seed with any perpendicular (its offset only
    // shapes the terminal amide N, refined by the pass below via bond 1).
    up.push(
        perpendicular_component(t.get(1).copied().unwrap_or(Vec3::new(0.0, 0.0, 1.0)), t[0])
            .unwrap_or_else(|| t[0].any_perpendicular()),
    );
    const IDEAL_N_CA_C: f64 = 111.0;
    for j in 1..nb {
        // Residue at extended vertex j: N uses bond j-1 (fixed), C uses
        // bond j (being placed).
        let ca = ext[j];
        let n_pos = ca - t[j - 1] * xns[j - 1] + up[j - 1] * heights[j - 1];
        let base =
            perpendicular_component(up[j - 1], t[j]).unwrap_or_else(|| t[j].any_perpendicular());
        let other = t[j].cross(base);
        let mut best = base;
        let mut best_err = f64::INFINITY;
        for k in 0..48 {
            let phi = k as f64 * std::f64::consts::TAU / 48.0;
            let candidate = base * phi.cos() + other * phi.sin();
            let c_pos = ca + t[j] * xcs[j] + candidate * heights[j];
            let angle = (n_pos - ca).angle_to(c_pos - ca).to_degrees();
            let err = (angle - IDEAL_N_CA_C).abs();
            if err < best_err {
                best_err = err;
                best = candidate;
            }
        }
        up.push(best);
    }

    let mut structure = Structure::new();
    // Per-bond geometry (spacing may vary residue to residue for
    // non-lattice traces, e.g. baseline predictions).
    struct BondGeom {
        t: Vec3,
        up: Vec3,
        x_c: f64,
        x_n: f64,
        h: f64,
        len: f64,
    }
    let bonds: Vec<BondGeom> = (0..nb)
        .map(|i| {
            let len = (ext[i + 1] - ext[i]).norm();
            let h = solve_height(len);
            BondGeom {
                t: t[i],
                up: up[i],
                x_c: (CA_C * CA_C - h * h).sqrt(),
                x_n: (N_CA * N_CA - h * h).sqrt(),
                h,
                len,
            }
        })
        .collect();

    for i in 0..n {
        let ca = trace[i];
        let spec = &specs[i];
        let mut residue = Residue::new(&spec.name, spec.seq_num);

        // Residue i sits at extended index i+1: N from incoming bond i,
        // C from outgoing bond i+1 (extended-bond indexing).
        let inc = &bonds[i];
        let out = &bonds[i + 1];
        let n_pos = ca - inc.t * inc.x_n + inc.up * inc.h;
        let c_pos = ca + out.t * out.x_c + out.up * out.h;
        // The next amide N (real or virtual) fixes the carbonyl direction.
        let next_ca = ca + out.t * out.len;
        let next_n = next_ca - out.t * out.x_n + out.up * out.h;
        let o_dir = ((c_pos - ca).normalized() + (c_pos - next_n).normalized()).normalized();
        let o_pos = c_pos + o_dir * C_O;

        residue.atoms.push(Atom::new("N", Element::N, n_pos));
        residue.atoms.push(Atom::new("CA", Element::C, ca));
        residue.atoms.push(Atom::new("C", Element::C, c_pos));
        residue.atoms.push(Atom::new("O", Element::O, o_pos));

        if spec.side_chain != SideChainClass::None {
            let e1 = (n_pos - ca).normalized();
            let e2 = (c_pos - ca).normalized();
            let bis = (e1 + e2).normalized();
            let nrm = e1.cross(e2).normalized();
            let cb_dir = (bis * -0.593 + nrm * 0.805).normalized();
            let cb = ca + cb_dir * CA_CB;
            residue.atoms.push(Atom::new("CB", Element::C, cb));
            let tip_element = match spec.side_chain {
                SideChainClass::PolarN => Some(Element::N),
                SideChainClass::PolarO => Some(Element::O),
                SideChainClass::Sulfur => Some(Element::S),
                SideChainClass::Hydrophobic => Some(Element::C),
                _ => None,
            };
            if let Some(el) = tip_element {
                let tip = cb + (cb - ca).normalized() * 1.5;
                let name = match el {
                    Element::N => "NG",
                    Element::O => "OG",
                    Element::S => "SG",
                    _ => "CG",
                };
                residue.atoms.push(Atom::new(name, el, tip));
            }
        }
        structure.residues.push(residue);
    }
    structure
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A lattice-like zigzag trace with exact 3.8 Å spacing.
    fn lattice_trace(n: usize) -> Vec<Vec3> {
        let s = 3.8 / (3.0f64).sqrt();
        let dirs = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.0, -1.0, -1.0),
            Vec3::new(-1.0, 1.0, -1.0),
        ];
        let mut p = Vec3::ZERO;
        let mut out = vec![p];
        for i in 0..n - 1 {
            let d = dirs[i % 3] * if i % 2 == 0 { 1.0 } else { -1.0 };
            p += d * s;
            out.push(p);
        }
        out
    }

    fn specs(seq: &str) -> Vec<ResidueSpec> {
        seq.chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "UNK".to_string(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect()
    }

    #[test]
    fn backbone_bond_lengths_exact() {
        let trace = lattice_trace(6);
        let s = build_peptide(&trace, &specs("LKDGSV"));
        for (i, r) in s.residues.iter().enumerate() {
            let n = r.atom("N").unwrap().pos;
            let ca = r.atom("CA").unwrap().pos;
            let c = r.atom("C").unwrap().pos;
            let o = r.atom("O").unwrap().pos;
            assert!((n.distance(ca) - N_CA).abs() < 1e-9, "residue {i} N-CA");
            assert!((ca.distance(c) - CA_C).abs() < 1e-9, "residue {i} CA-C");
            assert!((c.distance(o) - C_O).abs() < 1e-9, "residue {i} C=O");
        }
        // Peptide bonds between consecutive residues.
        for w in s.residues.windows(2) {
            let c = w[0].atom("C").unwrap().pos;
            let n = w[1].atom("N").unwrap().pos;
            assert!((c.distance(n) - C_N).abs() < 1e-6, "peptide bond length");
        }
    }

    #[test]
    fn backbone_angles_plausible() {
        let trace = lattice_trace(5);
        let s = build_peptide(&trace, &specs("LLLLL"));
        for r in &s.residues {
            let n = r.atom("N").unwrap().pos;
            let ca = r.atom("CA").unwrap().pos;
            let c = r.atom("C").unwrap().pos;
            let angle = (n - ca).angle_to(c - ca).to_degrees();
            assert!(
                (100.0..=122.0).contains(&angle),
                "N-CA-C angle {angle} outside the plausible band"
            );
        }
    }

    #[test]
    fn glycine_has_no_cb() {
        let trace = lattice_trace(4);
        let s = build_peptide(&trace, &specs("GLGS"));
        assert!(s.residues[0].atom("CB").is_none());
        assert!(s.residues[1].atom("CB").is_some());
        assert!(s.residues[2].atom("CB").is_none());
        assert!(s.residues[3].atom("CB").is_some());
    }

    #[test]
    fn side_chain_tips_typed_by_class() {
        let trace = lattice_trace(5);
        let s = build_peptide(&trace, &specs("LKDCG"));
        assert!(s.residues[0].atom("CG").is_some(), "Leu gets a carbon tip");
        assert!(
            s.residues[1].atom("NG").is_some(),
            "Lys gets a nitrogen tip"
        );
        assert!(s.residues[2].atom("OG").is_some(), "Asp gets an oxygen tip");
        assert!(s.residues[3].atom("SG").is_some(), "Cys gets a sulfur tip");
        assert_eq!(s.residues[4].atoms.len(), 4, "Gly is backbone-only");
    }

    #[test]
    fn cb_geometry() {
        let trace = lattice_trace(5);
        let s = build_peptide(&trace, &specs("VVVVV"));
        for r in &s.residues {
            let ca = r.atom("CA").unwrap().pos;
            let cb = r.atom("CB").unwrap().pos;
            assert!((ca.distance(cb) - CA_CB).abs() < 1e-9);
            let n = r.atom("N").unwrap().pos;
            let angle = (n - ca).angle_to(cb - ca).to_degrees();
            assert!((95.0..=125.0).contains(&angle), "N-CA-CB angle {angle}");
        }
    }

    #[test]
    fn works_on_irregular_traces() {
        // Baseline predictors emit non-lattice spacing; the builder must
        // adapt per-bond (spacing 3.6–4.0 Å).
        let trace = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(3.6, 0.0, 0.0),
            Vec3::new(4.9, 3.5, 0.4),
            Vec3::new(7.9, 5.9, 0.2),
        ];
        let s = build_peptide(&trace, &specs("ADGV"));
        for w in s.residues.windows(2) {
            let c = w[0].atom("C").unwrap().pos;
            let n = w[1].atom("N").unwrap().pos;
            assert!((c.distance(n) - C_N).abs() < 1e-6);
        }
    }
}
