//! Chemical elements relevant to proteins and drug-like ligands.

/// Supported elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Element {
    /// Hydrogen (mostly implicit — united-atom treatment).
    H,
    /// Carbon.
    C,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Sulfur.
    S,
    /// Phosphorus.
    P,
    /// Fluorine.
    F,
    /// Chlorine.
    Cl,
    /// Bromine.
    Br,
    /// Iodine.
    I,
}

impl Element {
    /// Van der Waals radius in Å (Bondi).
    pub fn vdw_radius(self) -> f64 {
        match self {
            Element::H => 1.20,
            Element::C => 1.70,
            Element::N => 1.55,
            Element::O => 1.52,
            Element::S => 1.80,
            Element::P => 1.80,
            Element::F => 1.47,
            Element::Cl => 1.75,
            Element::Br => 1.85,
            Element::I => 1.98,
        }
    }

    /// Covalent radius in Å.
    pub fn covalent_radius(self) -> f64 {
        match self {
            Element::H => 0.31,
            Element::C => 0.76,
            Element::N => 0.71,
            Element::O => 0.66,
            Element::S => 1.05,
            Element::P => 1.07,
            Element::F => 0.57,
            Element::Cl => 1.02,
            Element::Br => 1.20,
            Element::I => 1.39,
        }
    }

    /// Atomic mass (u).
    pub fn mass(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::S => 32.06,
            Element::P => 30.974,
            Element::F => 18.998,
            Element::Cl => 35.45,
            Element::Br => 79.904,
            Element::I => 126.904,
        }
    }

    /// PDB element symbol (right-justified two characters).
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::S => "S",
            Element::P => "P",
            Element::F => "F",
            Element::Cl => "CL",
            Element::Br => "BR",
            Element::I => "I",
        }
    }

    /// Parses a PDB element symbol.
    pub fn from_symbol(s: &str) -> Option<Element> {
        Some(match s.trim().to_ascii_uppercase().as_str() {
            "H" => Element::H,
            "C" => Element::C,
            "N" => Element::N,
            "O" => Element::O,
            "S" => Element::S,
            "P" => Element::P,
            "F" => Element::F,
            "CL" => Element::Cl,
            "BR" => Element::Br,
            "I" => Element::I,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Element; 10] = [
        Element::H,
        Element::C,
        Element::N,
        Element::O,
        Element::S,
        Element::P,
        Element::F,
        Element::Cl,
        Element::Br,
        Element::I,
    ];

    #[test]
    fn symbol_round_trip() {
        for e in ALL {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
        assert_eq!(Element::from_symbol("XX"), None);
        assert_eq!(Element::from_symbol(" c "), Some(Element::C));
    }

    #[test]
    fn radii_ordering_sane() {
        assert!(Element::H.vdw_radius() < Element::C.vdw_radius());
        assert!(Element::O.vdw_radius() < Element::S.vdw_radius());
        for e in ALL {
            assert!(e.covalent_radius() < e.vdw_radius());
            assert!(e.mass() > 0.0);
        }
    }
}
