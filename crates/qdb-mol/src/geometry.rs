//! 3-D vectors, quaternion rotations, and rigid transforms.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-D vector / point in Å.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// From an array.
    pub const fn from_array(a: [f64; 3]) -> Self {
        Self {
            x: a[0],
            y: a[1],
            z: a[2],
        }
    }

    /// To an array.
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// Panics on the zero vector (debug builds).
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-12, "normalizing a zero vector");
        self / n
    }

    /// Any unit vector perpendicular to this one (deterministic choice).
    pub fn any_perpendicular(self) -> Vec3 {
        let probe = if self.x.abs() < 0.9 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            Vec3::new(0.0, 1.0, 0.0)
        };
        self.cross(probe).normalized()
    }

    /// Angle to another vector in radians.
    pub fn angle_to(self, o: Vec3) -> f64 {
        let c = (self.dot(o) / (self.norm() * o.norm())).clamp(-1.0, 1.0);
        c.acos()
    }

    /// Componentwise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Componentwise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A unit quaternion rotation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part x.
    pub x: f64,
    /// Vector part y.
    pub y: f64,
    /// Vector part z.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Rotation of `angle` radians about `axis` (normalized internally).
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        let a = axis.normalized();
        let (s, c) = (angle / 2.0).sin_cos();
        Quat {
            w: c,
            x: a.x * s,
            y: a.y * s,
            z: a.z * s,
        }
    }

    /// Builds from raw components, normalizing to a unit quaternion.
    pub fn from_components(w: f64, x: f64, y: f64, z: f64) -> Quat {
        let n = (w * w + x * x + y * y + z * z).sqrt();
        debug_assert!(n > 1e-12);
        Quat {
            w: w / n,
            x: x / n,
            y: y / n,
            z: z / n,
        }
    }

    /// Hamilton product (compose rotations: `self` after `o`).
    pub fn mul(self, o: Quat) -> Quat {
        Quat {
            w: self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            y: self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            z: self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        }
    }

    /// Inverse (conjugate, for unit quaternions).
    pub fn conjugate(self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2·q×(q×v + w·v) with q = (x,y,z)
        let q = Vec3::new(self.x, self.y, self.z);
        let t = q.cross(v) * 2.0;
        v + t * self.w + q.cross(t)
    }

    /// The 3×3 rotation matrix (row-major).
    pub fn to_matrix(self) -> [[f64; 3]; 3] {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        [
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ]
    }
}

/// Rotates `point` about the axis through `origin` with direction `axis`.
pub fn rotate_about_axis(point: Vec3, origin: Vec3, axis: Vec3, angle: f64) -> Vec3 {
    let q = Quat::from_axis_angle(axis, angle);
    origin + q.rotate(point - origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < 1e-9
    }

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert!((a.dot(b) - (-1.0 + 1.0 + 6.0)).abs() < EPS);
        assert!(close(a + b, Vec3::new(0.0, 2.5, 5.0)));
        assert!(close(a - b, Vec3::new(2.0, 1.5, 1.0)));
        assert!(close(a * 2.0, Vec3::new(2.0, 4.0, 6.0)));
        assert!((a.cross(b).dot(a)).abs() < EPS, "cross ⊥ a");
        assert!((a.cross(b).dot(b)).abs() < EPS, "cross ⊥ b");
    }

    #[test]
    fn norms_and_angles() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < EPS);
        assert!((v.normalized().norm() - 1.0).abs() < EPS);
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert!((x.angle_to(y) - FRAC_PI_2).abs() < EPS);
        assert!((x.angle_to(x)).abs() < 1e-7);
    }

    #[test]
    fn perpendicular_is_perpendicular() {
        for v in [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.99, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ] {
            let p = v.any_perpendicular();
            assert!((p.norm() - 1.0).abs() < 1e-9);
            assert!(v.dot(p).abs() < 1e-9);
        }
    }

    #[test]
    fn quaternion_rotation_basics() {
        let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), FRAC_PI_2);
        let v = Vec3::new(1.0, 0.0, 0.0);
        assert!(close(q.rotate(v), Vec3::new(0.0, 1.0, 0.0)));
        // Full turn = identity.
        let full = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 2.0 * PI);
        assert!(close(full.rotate(v), v));
    }

    #[test]
    fn rotation_preserves_lengths_and_composition() {
        let q1 = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -1.0), 0.7);
        let q2 = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 1.0), -1.3);
        let v = Vec3::new(0.3, -2.0, 1.7);
        assert!((q1.rotate(v).norm() - v.norm()).abs() < 1e-9);
        // (q1∘q2)(v) == q1(q2(v))
        let composed = q1.mul(q2).rotate(v);
        let sequential = q1.rotate(q2.rotate(v));
        assert!(close(composed, sequential));
        // conjugate inverts
        assert!(close(q1.conjugate().rotate(q1.rotate(v)), v));
    }

    #[test]
    fn matrix_agrees_with_rotate() {
        let q = Quat::from_axis_angle(Vec3::new(0.2, -1.0, 0.5), 1.1);
        let m = q.to_matrix();
        let v = Vec3::new(1.0, 2.0, 3.0);
        let mv = Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        );
        assert!(close(mv, q.rotate(v)));
    }

    #[test]
    fn axis_rotation_about_origin_point() {
        let p = Vec3::new(2.0, 0.0, 0.0);
        let rotated = rotate_about_axis(p, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0), PI);
        assert!(close(rotated, Vec3::new(0.0, 0.0, 0.0)));
    }
}
