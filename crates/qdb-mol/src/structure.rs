//! Protein structures: atoms, residues, and whole fragments.

use crate::element::Element;
use crate::geometry::Vec3;

/// One atom of a protein structure.
#[derive(Clone, Debug, PartialEq)]
pub struct Atom {
    /// PDB atom name, e.g. `"CA"`, `"N"`, `"C"`, `"O"`, `"CB"`.
    pub name: String,
    /// Element.
    pub element: Element,
    /// Position in Å.
    pub pos: Vec3,
}

impl Atom {
    /// Creates an atom.
    pub fn new(name: &str, element: Element, pos: Vec3) -> Self {
        Self {
            name: name.to_string(),
            element,
            pos,
        }
    }
}

/// One residue: a named group of atoms.
#[derive(Clone, Debug, PartialEq)]
pub struct Residue {
    /// Three-letter residue name (e.g. `"LEU"`).
    pub name: String,
    /// PDB residue sequence number.
    pub seq_num: i32,
    /// Atoms, in PDB order.
    pub atoms: Vec<Atom>,
}

impl Residue {
    /// Creates an empty residue.
    pub fn new(name: &str, seq_num: i32) -> Self {
        Self {
            name: name.to_string(),
            seq_num,
            atoms: Vec::new(),
        }
    }

    /// Finds an atom by name.
    pub fn atom(&self, name: &str) -> Option<&Atom> {
        self.atoms.iter().find(|a| a.name == name)
    }

    /// The Cα position, if present.
    pub fn ca(&self) -> Option<Vec3> {
        self.atom("CA").map(|a| a.pos)
    }
}

/// A single-chain protein fragment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Structure {
    /// Chain identifier (defaults to `'A'`).
    pub chain_id: char,
    /// Residues in sequence order.
    pub residues: Vec<Residue>,
}

impl Structure {
    /// An empty chain-A structure.
    pub fn new() -> Self {
        Self {
            chain_id: 'A',
            residues: Vec::new(),
        }
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when there are no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Total atom count.
    pub fn num_atoms(&self) -> usize {
        self.residues.iter().map(|r| r.atoms.len()).sum()
    }

    /// All atoms in PDB order.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        self.residues.iter().flat_map(|r| r.atoms.iter())
    }

    /// Cα trace, one point per residue that has a Cα.
    pub fn ca_coords(&self) -> Vec<Vec3> {
        self.residues.iter().filter_map(|r| r.ca()).collect()
    }

    /// Backbone (N, CA, C, O) coordinates in order.
    pub fn backbone_coords(&self) -> Vec<Vec3> {
        self.residues
            .iter()
            .flat_map(|r| {
                ["N", "CA", "C", "O"]
                    .into_iter()
                    .filter_map(|n| r.atom(n).map(|a| a.pos))
            })
            .collect()
    }

    /// Geometric centroid over all atoms.
    pub fn centroid(&self) -> Vec3 {
        let n = self.num_atoms().max(1) as f64;
        self.atoms().fold(Vec3::ZERO, |acc, a| acc + a.pos / n)
    }

    /// Translates every atom.
    pub fn translate(&mut self, delta: Vec3) {
        for r in &mut self.residues {
            for a in &mut r.atoms {
                a.pos += delta;
            }
        }
    }

    /// Centers the structure on its centroid.
    pub fn center(&mut self) {
        let c = self.centroid();
        self.translate(-c);
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> (Vec3, Vec3) {
        let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut hi = Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for a in self.atoms() {
            lo = lo.min(a.pos);
            hi = hi.max(a.pos);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Structure {
        let mut s = Structure::new();
        let mut r1 = Residue::new("GLY", 1);
        r1.atoms
            .push(Atom::new("N", Element::N, Vec3::new(0.0, 0.0, 0.0)));
        r1.atoms
            .push(Atom::new("CA", Element::C, Vec3::new(1.5, 0.0, 0.0)));
        r1.atoms
            .push(Atom::new("C", Element::C, Vec3::new(2.0, 1.4, 0.0)));
        r1.atoms
            .push(Atom::new("O", Element::O, Vec3::new(1.5, 2.5, 0.0)));
        let mut r2 = Residue::new("ALA", 2);
        r2.atoms
            .push(Atom::new("N", Element::N, Vec3::new(3.3, 1.4, 0.0)));
        r2.atoms
            .push(Atom::new("CA", Element::C, Vec3::new(4.2, 2.5, 0.0)));
        s.residues.push(r1);
        s.residues.push(r2);
        s
    }

    #[test]
    fn accessors() {
        let s = toy();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_atoms(), 6);
        assert_eq!(s.ca_coords().len(), 2);
        assert_eq!(s.backbone_coords().len(), 6);
        assert!(s.residues[0].atom("CA").is_some());
        assert!(s.residues[0].atom("CB").is_none());
    }

    #[test]
    fn center_moves_centroid_to_origin() {
        let mut s = toy();
        s.center();
        assert!(s.centroid().norm() < 1e-12);
    }

    #[test]
    fn translate_shifts_bbox() {
        let mut s = toy();
        let (lo0, hi0) = s.bounding_box();
        s.translate(Vec3::new(10.0, 0.0, 0.0));
        let (lo1, hi1) = s.bounding_box();
        assert!((lo1.x - lo0.x - 10.0).abs() < 1e-12);
        assert!((hi1.x - hi0.x - 10.0).abs() < 1e-12);
        assert!((lo1.y - lo0.y).abs() < 1e-12);
    }
}
