//! # qdb-mol
//!
//! Molecular structures and IO for QDockBank-rs: 3-D geometry primitives,
//! protein structures with PDB read/write, full-backbone peptide
//! reconstruction from Cα traces (the paper's §4.3.3 atomic
//! reconstruction), Kabsch/Horn superposition and Cα RMSD (§6.1.1), and
//! drug-like synthetic ligands with torsion trees (the PDBbind-ligand
//! substitute of DESIGN.md §1).

pub mod builder;
pub mod element;
pub mod geometry;
pub mod kabsch;
pub mod ligand;
pub mod pdb;
pub mod structure;
pub mod templates;

pub use builder::{build_peptide, classify_side_chain, ResidueSpec, SideChainClass};
pub use element::Element;
pub use geometry::{Quat, Vec3};
pub use kabsch::{ca_rmsd, rmsd_raw, superpose, Superposition};
pub use ligand::{generate_ligand, Ligand, LigandAtom, Torsion};
pub use pdb::{parse_pdb, write_pdb, PdbError};
pub use structure::{Atom, Residue, Structure};
pub use templates::{template_for, three_letter, validate_residue, ResidueTemplate};
