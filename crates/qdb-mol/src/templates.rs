//! Standard amino-acid templates (paper §4.3.3: "refined by applying
//! standard amino acid templates").
//!
//! One template per residue type: the atoms the coarse-grained builder
//! emits, ideal backbone internal coordinates, and validation helpers the
//! pipeline uses to check reconstructed structures.

use crate::builder::{classify_side_chain, SideChainClass};
use crate::element::Element;
use crate::structure::Residue;

/// Ideal backbone geometry shared by all residues.
pub mod ideal {
    /// N–CA bond (Å).
    pub const N_CA: f64 = 1.458;
    /// CA–C bond (Å).
    pub const CA_C: f64 = 1.525;
    /// C–N peptide bond (Å).
    pub const C_N: f64 = 1.329;
    /// C=O carbonyl (Å).
    pub const C_O: f64 = 1.231;
    /// CA–CB bond (Å).
    pub const CA_CB: f64 = 1.53;
    /// N–CA–C angle (degrees).
    pub const N_CA_C_DEG: f64 = 111.0;
    /// CA–C–N angle (degrees).
    pub const CA_C_N_DEG: f64 = 116.2;
    /// C–N–CA angle (degrees).
    pub const C_N_CA_DEG: f64 = 121.7;
}

/// The coarse-grained template of one residue type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResidueTemplate {
    /// One-letter code.
    pub code: char,
    /// Three-letter PDB name.
    pub name: &'static str,
    /// Side-chain class driving atom emission.
    pub side_chain: SideChainClass,
    /// Atom names the builder emits, in order.
    pub atom_names: Vec<&'static str>,
    /// Elements matching `atom_names`.
    pub elements: Vec<Element>,
}

/// Three-letter name for a one-letter code.
pub fn three_letter(code: char) -> &'static str {
    match code.to_ascii_uppercase() {
        'A' => "ALA",
        'R' => "ARG",
        'N' => "ASN",
        'D' => "ASP",
        'C' => "CYS",
        'Q' => "GLN",
        'E' => "GLU",
        'G' => "GLY",
        'H' => "HIS",
        'I' => "ILE",
        'L' => "LEU",
        'K' => "LYS",
        'M' => "MET",
        'F' => "PHE",
        'P' => "PRO",
        'S' => "SER",
        'T' => "THR",
        'W' => "TRP",
        'Y' => "TYR",
        'V' => "VAL",
        _ => "UNK",
    }
}

/// Builds the template for a one-letter residue code.
pub fn template_for(code: char) -> ResidueTemplate {
    let side_chain = classify_side_chain(code);
    let mut atom_names = vec!["N", "CA", "C", "O"];
    let mut elements = vec![Element::N, Element::C, Element::C, Element::O];
    if side_chain != SideChainClass::None {
        atom_names.push("CB");
        elements.push(Element::C);
    }
    let tip = match side_chain {
        SideChainClass::Hydrophobic => Some(("CG", Element::C)),
        SideChainClass::PolarN => Some(("NG", Element::N)),
        SideChainClass::PolarO => Some(("OG", Element::O)),
        SideChainClass::Sulfur => Some(("SG", Element::S)),
        _ => None,
    };
    if let Some((name, el)) = tip {
        atom_names.push(name);
        elements.push(el);
    }
    ResidueTemplate {
        code: code.to_ascii_uppercase(),
        name: three_letter(code),
        side_chain,
        atom_names,
        elements,
    }
}

/// Validates a reconstructed residue against its template: atom names,
/// order, elements, and backbone bond lengths within `tol` Å.
pub fn validate_residue(residue: &Residue, code: char, tol: f64) -> Result<(), String> {
    let template = template_for(code);
    if residue.atoms.len() != template.atom_names.len() {
        return Err(format!(
            "{}: expected {} atoms, found {}",
            residue.name,
            template.atom_names.len(),
            residue.atoms.len()
        ));
    }
    for ((atom, want_name), want_el) in residue
        .atoms
        .iter()
        .zip(&template.atom_names)
        .zip(&template.elements)
    {
        if atom.name != *want_name {
            return Err(format!(
                "{}: expected atom {want_name}, found {}",
                residue.name, atom.name
            ));
        }
        if atom.element != *want_el {
            return Err(format!(
                "{}: atom {} has wrong element",
                residue.name, atom.name
            ));
        }
    }
    let dist = |a: &str, b: &str| -> Option<f64> {
        Some(residue.atom(a)?.pos.distance(residue.atom(b)?.pos))
    };
    for (a, b, want) in [
        ("N", "CA", ideal::N_CA),
        ("CA", "C", ideal::CA_C),
        ("C", "O", ideal::C_O),
    ] {
        if let Some(d) = dist(a, b) {
            if (d - want).abs() > tol {
                return Err(format!(
                    "{}: {a}-{b} bond {d:.3} vs ideal {want:.3}",
                    residue.name
                ));
            }
        }
    }
    if template.side_chain != SideChainClass::None {
        if let Some(d) = dist("CA", "CB") {
            if (d - ideal::CA_CB).abs() > tol {
                return Err(format!("{}: CA-CB bond {d:.3}", residue.name));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_peptide, ResidueSpec};
    use crate::geometry::Vec3;

    #[test]
    fn twenty_templates_well_formed() {
        for code in "ARNDCQEGHILKMFPSTWYV".chars() {
            let t = template_for(code);
            assert_eq!(t.atom_names.len(), t.elements.len());
            assert!(t.atom_names.len() >= 4, "{code}: at least a backbone");
            assert_eq!(t.atom_names[..4], ["N", "CA", "C", "O"]);
            assert_eq!(t.name.len(), 3);
        }
        // Glycine is backbone-only; tryptophan has a nitrogen tip.
        assert_eq!(template_for('G').atom_names.len(), 4);
        assert!(template_for('W').atom_names.contains(&"NG"));
        assert!(template_for('M').atom_names.contains(&"SG"));
    }

    #[test]
    fn three_letter_codes_match_standard() {
        assert_eq!(three_letter('A'), "ALA");
        assert_eq!(three_letter('w'), "TRP");
        assert_eq!(three_letter('X'), "UNK");
    }

    #[test]
    fn builder_output_validates_against_templates() {
        let s = 3.8 / (3.0f64).sqrt();
        let dirs = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.0, -1.0, -1.0),
            Vec3::new(-1.0, 1.0, -1.0),
        ];
        let seq = "GLKDCMW";
        let mut p = Vec3::ZERO;
        let mut trace = vec![p];
        for i in 0..seq.len() - 1 {
            p += dirs[i % 3] * s * if i % 2 == 0 { 1.0 } else { -1.0 };
            trace.push(p);
        }
        let specs: Vec<ResidueSpec> = seq
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: three_letter(c).to_string(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        let structure = build_peptide(&trace, &specs);
        for (residue, code) in structure.residues.iter().zip(seq.chars()) {
            validate_residue(residue, code, 1e-6)
                .unwrap_or_else(|e| panic!("validation failed: {e}"));
        }
    }

    #[test]
    fn validation_rejects_wrong_residue() {
        let s = 3.8 / (3.0f64).sqrt();
        let trace = vec![
            Vec3::ZERO,
            Vec3::new(s, s, s),
            Vec3::new(2.0 * s, 0.0, 0.0),
            Vec3::new(3.0 * s, s, -s),
        ];
        let specs: Vec<ResidueSpec> = "GGGG"
            .chars()
            .enumerate()
            .map(|(i, c)| ResidueSpec {
                name: "GLY".to_string(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(c),
            })
            .collect();
        let structure = build_peptide(&trace, &specs);
        // Validating a glycine against a leucine template must fail
        // (missing CB).
        assert!(validate_residue(&structure.residues[0], 'L', 1e-6).is_err());
        assert!(validate_residue(&structure.residues[0], 'G', 1e-6).is_ok());
    }
}
