//! Optimal superposition (Kabsch/Horn) and RMSD (paper §6.1.1).
//!
//! Uses Horn's quaternion method: the optimal rotation is the eigenvector
//! of a symmetric 4×4 matrix built from the cross-covariance of the two
//! centered point sets. The dominant eigenvector is found with a shifted
//! power iteration — no external linear-algebra dependency.

use crate::geometry::{Quat, Vec3};

/// Result of an optimal superposition.
#[derive(Clone, Debug)]
pub struct Superposition {
    /// Rotation applied to the (centered) mobile set.
    pub rotation: Quat,
    /// Centroid of the mobile set.
    pub mobile_centroid: Vec3,
    /// Centroid of the reference set.
    pub reference_centroid: Vec3,
    /// RMSD after superposition (Å).
    pub rmsd: f64,
}

impl Superposition {
    /// Maps a mobile-frame point into the reference frame.
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p - self.mobile_centroid) + self.reference_centroid
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric 4×4: returns
/// `(eigenvalues, eigenvectors)` with eigenvectors in columns.
fn jacobi_eigen4(mut a: [[f64; 4]; 4]) -> ([f64; 4], [[f64; 4]; 4]) {
    let mut v = [[0.0f64; 4]; 4];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..32 {
        let mut off = 0.0;
        for p in 0..4 {
            for q in (p + 1)..4 {
                off += a[p][q] * a[p][q];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..4 {
            for q in (p + 1)..4 {
                if a[p][q].abs() < 1e-18 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the Givens rotation G(p,q) on both sides.
                for k in 0..4 {
                    let (akp, akq) = (a[k][p], a[k][q]);
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..4 {
                    let (apk, aqk) = (a[p][k], a[q][k]);
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..4 {
                    let (vkp, vkq) = (v[k][p], v[k][q]);
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    ([a[0][0], a[1][1], a[2][2], a[3][3]], v)
}

fn centroid(points: &[Vec3]) -> Vec3 {
    let n = points.len().max(1) as f64;
    points.iter().fold(Vec3::ZERO, |acc, &p| acc + p / n)
}

/// RMSD without any alignment.
pub fn rmsd_raw(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "point count mismatch");
    assert!(!a.is_empty(), "empty point sets");
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sq()).sum();
    (ss / a.len() as f64).sqrt()
}

/// Optimal superposition of `mobile` onto `reference` (Horn's method) and
/// the resulting RMSD — the metric used throughout the paper's evaluation.
///
/// # Panics
/// Panics on length mismatch or fewer than 3 points.
pub fn superpose(mobile: &[Vec3], reference: &[Vec3]) -> Superposition {
    assert_eq!(mobile.len(), reference.len(), "point count mismatch");
    assert!(
        mobile.len() >= 3,
        "need at least 3 points for superposition"
    );
    let mc = centroid(mobile);
    let rc = centroid(reference);

    // Cross-covariance of centered sets.
    let mut s = [[0.0f64; 3]; 3];
    for (m, r) in mobile.iter().zip(reference) {
        let a = *m - mc;
        let b = *r - rc;
        let av = a.to_array();
        let bv = b.to_array();
        for i in 0..3 {
            for j in 0..3 {
                s[i][j] += av[i] * bv[j];
            }
        }
    }

    // Horn's symmetric 4×4 key matrix.
    let (sxx, sxy, sxz) = (s[0][0], s[0][1], s[0][2]);
    let (syx, syy, syz) = (s[1][0], s[1][1], s[1][2]);
    let (szx, szy, szz) = (s[2][0], s[2][1], s[2][2]);
    let k = [
        [sxx + syy + szz, syz - szy, szx - sxz, sxy - syx],
        [syz - szy, sxx - syy - szz, sxy + syx, szx + sxz],
        [szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy],
        [sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz],
    ];

    // Dominant eigenvector via cyclic Jacobi — exact for a symmetric 4×4.
    let (eigenvalues, eigenvectors) = jacobi_eigen4(k);
    let top = (0..4)
        .max_by(|&i, &j| eigenvalues[i].partial_cmp(&eigenvalues[j]).unwrap())
        .unwrap();
    let v = [
        eigenvectors[0][top],
        eigenvectors[1][top],
        eigenvectors[2][top],
        eigenvectors[3][top],
    ];
    let rotation = Quat::from_components(v[0], v[1], v[2], v[3]);

    // RMSD after applying the rotation.
    let ss: f64 = mobile
        .iter()
        .zip(reference)
        .map(|(m, r)| {
            let mapped = rotation.rotate(*m - mc) + rc;
            (mapped - *r).norm_sq()
        })
        .sum();
    let rmsd = (ss / mobile.len() as f64).sqrt();

    Superposition {
        rotation,
        mobile_centroid: mc,
        reference_centroid: rc,
        rmsd,
    }
}

/// Cα RMSD between two equal-length coordinate sets after optimal
/// superposition — the paper's headline structural metric.
pub fn ca_rmsd(predicted: &[Vec3], experimental: &[Vec3]) -> f64 {
    superpose(predicted, experimental).rmsd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Quat;

    fn cloud() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(3.8, 0.0, 0.0),
            Vec3::new(5.0, 3.2, 0.5),
            Vec3::new(7.7, 4.4, 2.8),
            Vec3::new(9.0, 7.6, 3.1),
            Vec3::new(12.0, 8.8, 5.0),
        ]
    }

    #[test]
    fn identical_sets_have_zero_rmsd() {
        let a = cloud();
        let sup = superpose(&a, &a);
        assert!(sup.rmsd < 1e-9);
        assert!(rmsd_raw(&a, &a) < 1e-12);
    }

    #[test]
    fn recovers_known_rigid_motion() {
        let a = cloud();
        let q = Quat::from_axis_angle(Vec3::new(0.4, -1.0, 0.7), 1.234);
        let shift = Vec3::new(5.0, -3.0, 2.0);
        let b: Vec<Vec3> = a.iter().map(|&p| q.rotate(p) + shift).collect();
        // Raw RMSD is large, aligned RMSD ≈ 0.
        assert!(rmsd_raw(&a, &b) > 1.0);
        let sup = superpose(&a, &b);
        assert!(sup.rmsd < 1e-6, "rmsd = {}", sup.rmsd);
        // apply() maps mobile points onto the reference.
        for (m, r) in a.iter().zip(&b) {
            assert!((sup.apply(*m) - *r).norm() < 1e-6);
        }
    }

    #[test]
    fn detects_genuine_deviation() {
        let a = cloud();
        let mut b = a.clone();
        b[2] += Vec3::new(2.0, 0.0, 0.0); // one displaced residue
        let r = ca_rmsd(&a, &b);
        assert!(r > 0.3 && r < 2.0, "rmsd = {r}");
    }

    #[test]
    fn rmsd_is_symmetric() {
        let a = cloud();
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.5);
        let b: Vec<Vec3> = a
            .iter()
            .enumerate()
            .map(|(i, &p)| q.rotate(p) + Vec3::new(0.1 * i as f64, 0.0, 0.2))
            .collect();
        let ab = ca_rmsd(&a, &b);
        let ba = ca_rmsd(&b, &a);
        assert!((ab - ba).abs() < 1e-6, "{ab} vs {ba}");
    }

    #[test]
    fn handles_reflection_free_optimum() {
        // Mirrored set: proper-rotation optimum must stay worse than 0 —
        // Horn's method never returns an improper rotation.
        let a = cloud();
        let b: Vec<Vec3> = a.iter().map(|p| Vec3::new(-p.x, p.y, p.z)).collect();
        let sup = superpose(&a, &b);
        assert!(
            sup.rmsd > 0.5,
            "a mirror image must not superpose perfectly"
        );
        // Rotation must be proper: det(R) = +1.
        let m = sup.rotation.to_matrix();
        let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
        assert!((det - 1.0).abs() < 1e-9);
    }

    #[test]
    fn translation_only_case() {
        let a = cloud();
        let b: Vec<Vec3> = a.iter().map(|&p| p + Vec3::new(10.0, 20.0, 30.0)).collect();
        let sup = superpose(&a, &b);
        assert!(sup.rmsd < 1e-9);
    }
}
