//! Property-based tests for the molecular toolkit.

use proptest::prelude::*;
use qdb_mol::builder::{build_peptide, classify_side_chain, ResidueSpec};
use qdb_mol::geometry::{Quat, Vec3};
use qdb_mol::kabsch::{ca_rmsd, rmsd_raw, superpose};
use qdb_mol::ligand::generate_ligand;
use qdb_mol::pdb::{parse_pdb, write_pdb};

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_cloud(n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    proptest::collection::vec(arb_vec3(15.0), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kabsch recovers any rigid motion to numerical precision.
    #[test]
    fn kabsch_recovers_rigid_motion(
        cloud in arb_cloud(6),
        axis in arb_vec3(1.0),
        angle in -3.1f64..3.1,
        shift in arb_vec3(20.0),
    ) {
        prop_assume!(axis.norm() > 0.1);
        // Degenerate (nearly collinear) clouds have unstable rotations but
        // the RMSD must still vanish; only check rmsd.
        let q = Quat::from_axis_angle(axis, angle);
        let moved: Vec<Vec3> = cloud.iter().map(|&p| q.rotate(p) + shift).collect();
        let sup = superpose(&cloud, &moved);
        prop_assert!(sup.rmsd < 1e-6, "rmsd = {}", sup.rmsd);
    }

    /// Aligned RMSD never exceeds raw RMSD.
    #[test]
    fn aligned_rmsd_bounded_by_raw(a in arb_cloud(5), b in arb_cloud(5)) {
        let aligned = ca_rmsd(&a, &b);
        let raw = rmsd_raw(&a, &b);
        prop_assert!(aligned <= raw + 1e-9, "{aligned} > {raw}");
    }

    /// RMSD is symmetric in its arguments.
    #[test]
    fn rmsd_symmetric(a in arb_cloud(5), b in arb_cloud(5)) {
        prop_assert!((ca_rmsd(&a, &b) - ca_rmsd(&b, &a)).abs() < 1e-6);
    }

    /// Quaternion rotation preserves dot products (isometry).
    #[test]
    fn quaternion_isometry(u in arb_vec3(5.0), v in arb_vec3(5.0), axis in arb_vec3(1.0), angle in -3.1f64..3.1) {
        prop_assume!(axis.norm() > 0.1);
        let q = Quat::from_axis_angle(axis, angle);
        let before = u.dot(v);
        let after = q.rotate(u).dot(q.rotate(v));
        prop_assert!((before - after).abs() < 1e-9);
    }

    /// Every generated ligand is a clash-free tree with valid bonds, for
    /// any seed and requested size.
    #[test]
    fn ligand_generator_invariants(seed in any::<u64>(), size in 0usize..40) {
        let l = generate_ligand(seed, size);
        prop_assert!(l.num_atoms() >= 2);
        prop_assert_eq!(l.bonds.len(), l.num_atoms() - 1);
        prop_assert!(l.bonds_ok(1e-9));
        prop_assert!(l.num_rotatable() <= 8);
        // Tree connectivity: BFS from 0 reaches all atoms.
        let mut seen = vec![false; l.num_atoms()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &(a, b) in &l.bonds {
                let next = if a == u { b } else if b == u { a } else { continue };
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Applying a torsion and its inverse restores the ligand.
    #[test]
    fn torsion_inverse_roundtrip(seed in any::<u64>(), angle in -3.0f64..3.0) {
        let l = generate_ligand(seed, 16);
        for t in 0..l.num_rotatable() {
            let back = l.with_torsion(t, angle).with_torsion(t, -angle);
            for (x, y) in l.atoms.iter().zip(&back.atoms) {
                prop_assert!((x.pos - y.pos).norm() < 1e-9);
            }
        }
    }

    /// PDB write→parse round-trips coordinates to 3 decimals for any
    /// builder output.
    #[test]
    fn pdb_roundtrip_on_built_peptides(seed in any::<u64>()) {
        // Deterministic pseudo-random trace from the seed.
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut trace = vec![Vec3::ZERO];
        for _ in 0..5 {
            let d = Vec3::new(next(), next(), next());
            prop_assume!(d.norm() > 0.05);
            let last = *trace.last().unwrap();
            trace.push(last + d.normalized() * 3.8);
        }
        let specs: Vec<ResidueSpec> = "LKDSVG"
            .chars()
            .enumerate()
            .map(|(i, ch)| ResidueSpec {
                name: "UNK".into(),
                seq_num: i as i32 + 1,
                side_chain: classify_side_chain(ch),
            })
            .collect();
        let s = build_peptide(&trace, &specs);
        let parsed = parse_pdb(&write_pdb(&s)).unwrap();
        prop_assert_eq!(parsed.len(), s.len());
        for (a, b) in s.atoms().zip(parsed.atoms()) {
            prop_assert!((a.pos - b.pos).norm() < 2e-3);
            prop_assert_eq!(&a.name, &b.name);
        }
    }
}
