//! Stochastic (trajectory) noise model for utility-level hardware.
//!
//! The paper argues (§5.2) that moderate quantum noise acts as a stochastic
//! perturbation that can help VQE escape local minima. We model the IBM
//! Eagle error channels that matter at the circuit level:
//!
//! * depolarizing error after every 1- and 2-qubit gate (Pauli twirl
//!   trajectory: with probability `p`, insert a uniformly random non-identity
//!   Pauli on the touched qubits);
//! * a thermal-relaxation proxy derived from gate duration and T1/T2
//!   (converted to an equivalent per-gate Pauli error rate);
//! * readout bit-flips, applied to sampled counts.
//!
//! A trajectory run is one stochastic realization; averaging energies over
//! trajectories converges to the channel expectation.

use crate::circuit::Circuit;
use crate::compile::CompiledCircuit;
use crate::exec::SimWorkspace;
use crate::gate::GateKind;
use crate::statevector::Statevector;
use rand::Rng;

/// Calibration-style description of a noisy processor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after each single-qubit gate.
    pub p1: f64,
    /// Depolarizing probability after each two-qubit gate.
    pub p2: f64,
    /// Per-bit readout flip probability.
    pub readout: f64,
    /// Median T1 (µs) — used by [`NoiseModel::eagle_like`] scaling.
    pub t1_us: f64,
    /// Median T2 (µs).
    pub t2_us: f64,
}

impl NoiseModel {
    /// The ideal (noiseless) model.
    pub const IDEAL: NoiseModel = NoiseModel {
        p1: 0.0,
        p2: 0.0,
        readout: 0.0,
        t1_us: f64::INFINITY,
        t2_us: f64::INFINITY,
    };

    /// A model with the error rates and coherence times of IBM Eagle r3
    /// (§5.2 cites T1 ≈ 60–120 µs, T2 ≈ 40–100 µs; typical ECR error ≈ 1e-2,
    /// SX error ≈ 2.5e-4, readout ≈ 1e-2).
    pub fn eagle_like() -> NoiseModel {
        NoiseModel {
            p1: 2.5e-4,
            p2: 1.0e-2,
            readout: 1.0e-2,
            t1_us: 90.0,
            t2_us: 70.0,
        }
    }

    /// Uniformly scales all gate-error probabilities (for noise ablations).
    pub fn scaled(self, factor: f64) -> NoiseModel {
        NoiseModel {
            p1: (self.p1 * factor).min(0.75),
            p2: (self.p2 * factor).min(0.75),
            readout: (self.readout * factor).min(0.5),
            ..self
        }
    }

    /// True when every channel is off.
    pub fn is_ideal(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0 && self.readout == 0.0
    }

    /// A deterministic calibration-drift perturbation of this model.
    ///
    /// Utility-level backends drift between calibration cycles: gate and
    /// readout error rates grow by a few × and coherence times shrink
    /// (Kirsopp et al. report exactly this failure class dominating long
    /// hardware campaigns). The drifted model is what a fault-injection
    /// layer hands the simulator for the evaluations between drift onset
    /// and detection. Drift on an ideal model *introduces* error at the
    /// Eagle floor rates — a perfectly calibrated backend cannot stay
    /// perfect through a drift event.
    pub fn drifted(self, seed: u64) -> NoiseModel {
        // splitmix64 steps: cheap, deterministic, no rand dependency.
        let mut state = seed;
        let mut next = move || -> f64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        let floor = NoiseModel::eagle_like();
        let grow = |p: f64, lo: f64, r: f64| ((p.max(lo)) * (2.0 + 4.0 * r)).min(0.75);
        NoiseModel {
            p1: grow(self.p1, floor.p1, next()),
            p2: grow(self.p2, floor.p2, next()),
            readout: grow(self.readout, floor.readout, next()).min(0.5),
            t1_us: self.t1_us.min(floor.t1_us) * (0.3 + 0.5 * next()),
            t2_us: self.t2_us.min(floor.t2_us) * (0.3 + 0.5 * next()),
        }
    }
}

fn random_pauli<R: Rng>(rng: &mut R) -> GateKind {
    match rng.gen_range(0..3) {
        0 => GateKind::X,
        1 => GateKind::Y,
        _ => GateKind::Z,
    }
}

/// Applies `circuit` (bound via `params`) to `sv`, inserting trajectory
/// noise after each gate according to `model`.
///
/// With `NoiseModel::IDEAL` this is exactly `apply_parametric`.
pub fn apply_noisy<R: Rng>(
    sv: &mut Statevector,
    circuit: &Circuit,
    params: &[f64],
    model: &NoiseModel,
    rng: &mut R,
) {
    assert_eq!(
        circuit.num_params(),
        params.len(),
        "parameter count mismatch"
    );
    for instr in circuit.instructions() {
        let theta = instr.angle.map(|a| a.resolve(params)).unwrap_or(0.0);
        match instr.kind.arity() {
            1 => {
                sv.apply_single(instr.kind, instr.q0 as usize, theta);
                if model.p1 > 0.0 && rng.gen::<f64>() < model.p1 {
                    sv.apply_single(random_pauli(rng), instr.q0 as usize, 0.0);
                }
            }
            _ => {
                sv.apply_two(instr.kind, instr.q0 as usize, instr.q1 as usize, theta);
                if model.p2 > 0.0 && rng.gen::<f64>() < model.p2 {
                    // Uniform non-identity two-qubit Pauli: pick a random
                    // non-(I,I) pair.
                    loop {
                        let a = rng.gen_range(0..4);
                        let b = rng.gen_range(0..4);
                        if a == 0 && b == 0 {
                            continue;
                        }
                        if a > 0 {
                            sv.apply_single(
                                [GateKind::X, GateKind::Y, GateKind::Z][a - 1],
                                instr.q0 as usize,
                                0.0,
                            );
                        }
                        if b > 0 {
                            sv.apply_single(
                                [GateKind::X, GateKind::Y, GateKind::Z][b - 1],
                                instr.q1 as usize,
                                0.0,
                            );
                        }
                        break;
                    }
                }
            }
        }
    }
}

/// Averages the diagonal-operator energy over `trajectories` noisy runs.
///
/// Allocates one statevector and reuses it across trajectories; repeated
/// callers should hold a [`SimWorkspace`] and use
/// [`noisy_expectation_ws`] instead, which also takes the compiled fast
/// path when the model is ideal.
pub fn noisy_expectation<R: Rng>(
    circuit: &Circuit,
    params: &[f64],
    diag: &[f64],
    model: &NoiseModel,
    trajectories: usize,
    rng: &mut R,
) -> f64 {
    let mut sv = Statevector::zero(circuit.num_qubits());
    if model.is_ideal() || trajectories == 0 {
        sv.apply_parametric(circuit, params);
        return sv.expectation_diagonal(diag);
    }
    let mut acc = 0.0;
    for t in 0..trajectories {
        if t > 0 {
            sv.reset_zero();
        }
        apply_noisy(&mut sv, circuit, params, model, rng);
        acc += sv.expectation_diagonal(diag);
    }
    acc / trajectories as f64
}

/// [`noisy_expectation`] through a reusable [`SimWorkspace`] — the form the
/// VQE objective calls every iteration.
///
/// The ideal-model path runs the fused [`CompiledCircuit`] plan and is
/// allocation-free after warmup. Trajectory noise inserts stochastic Paulis
/// *between* gates, so under a noisy model every insertion point is a
/// fusion barrier and the circuit is applied gate-by-gate from `circuit`;
/// the workspace still amortizes the statevector buffer across
/// trajectories.
#[allow(clippy::too_many_arguments)]
pub fn noisy_expectation_ws<R: Rng>(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    params: &[f64],
    diag: &[f64],
    model: &NoiseModel,
    trajectories: usize,
    rng: &mut R,
    ws: &mut SimWorkspace,
) -> f64 {
    if model.is_ideal() || trajectories == 0 {
        return ws.energy(compiled, params, diag);
    }
    ws.ensure_qubits(circuit.num_qubits());
    let mut acc = 0.0;
    for _ in 0..trajectories {
        let sv = ws.statevector_mut();
        sv.reset_zero();
        apply_noisy(sv, circuit, params, model, rng);
        acc += sv.expectation_diagonal(diag);
    }
    acc / trajectories as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_circuit(n: usize) -> (Circuit, Vec<f64>) {
        let c = crate::ansatz::efficient_su2(n, 1, crate::ansatz::Entanglement::Linear);
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.2 + 0.13 * i as f64).collect();
        (c, params)
    }

    #[test]
    fn ideal_model_matches_clean_run() {
        let (c, params) = test_circuit(4);
        let mut a = Statevector::zero(4);
        a.apply_parametric(&c, &params);
        let mut b = Statevector::zero(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        apply_noisy(&mut b, &c, &params, &NoiseModel::IDEAL, &mut rng);
        assert!(a.inner(&b).abs() > 1.0 - 1e-10);
    }

    #[test]
    fn noise_preserves_norm() {
        let (c, params) = test_circuit(4);
        let model = NoiseModel::eagle_like().scaled(20.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut sv = Statevector::zero(4);
        apply_noisy(&mut sv, &c, &params, &model, &mut rng);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn strong_noise_changes_the_state() {
        let (c, params) = test_circuit(4);
        let model = NoiseModel {
            p1: 0.5,
            p2: 0.5,
            readout: 0.0,
            t1_us: 1.0,
            t2_us: 1.0,
        };
        let mut clean = Statevector::zero(4);
        clean.apply_parametric(&c, &params);
        // With p=0.5 on every gate, at least one trajectory out of a few
        // must deviate.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut deviated = false;
        for _ in 0..5 {
            let mut sv = Statevector::zero(4);
            apply_noisy(&mut sv, &c, &params, &model, &mut rng);
            if clean.inner(&sv).abs() < 1.0 - 1e-6 {
                deviated = true;
                break;
            }
        }
        assert!(deviated);
    }

    #[test]
    fn workspace_path_matches_plain_path() {
        let (c, params) = test_circuit(3);
        let diag: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 1.0).collect();
        let cc = CompiledCircuit::compile(&c);
        let mut ws = SimWorkspace::new(3);

        // Ideal model: compiled path vs direct path.
        let plain = noisy_expectation(
            &c,
            &params,
            &diag,
            &NoiseModel::IDEAL,
            4,
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        let via_ws = noisy_expectation_ws(
            &c,
            &cc,
            &params,
            &diag,
            &NoiseModel::IDEAL,
            4,
            &mut ChaCha8Rng::seed_from_u64(3),
            &mut ws,
        );
        assert!((plain - via_ws).abs() < 1e-12);

        // Noisy model: both apply gate-by-gate with the same RNG stream, so
        // the trajectory averages are bit-identical.
        let model = NoiseModel::eagle_like().scaled(10.0);
        let plain = noisy_expectation(
            &c,
            &params,
            &diag,
            &model,
            16,
            &mut ChaCha8Rng::seed_from_u64(7),
        );
        let via_ws = noisy_expectation_ws(
            &c,
            &cc,
            &params,
            &diag,
            &model,
            16,
            &mut ChaCha8Rng::seed_from_u64(7),
            &mut ws,
        );
        assert_eq!(plain, via_ws);
    }

    #[test]
    fn trajectory_average_reproducible() {
        let (c, params) = test_circuit(3);
        let diag: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let model = NoiseModel::eagle_like().scaled(10.0);
        let e1 = noisy_expectation(
            &c,
            &params,
            &diag,
            &model,
            20,
            &mut ChaCha8Rng::seed_from_u64(11),
        );
        let e2 = noisy_expectation(
            &c,
            &params,
            &diag,
            &model,
            20,
            &mut ChaCha8Rng::seed_from_u64(11),
        );
        assert_eq!(e1, e2);
    }

    #[test]
    fn drift_is_deterministic_and_degrades_calibration() {
        let base = NoiseModel::eagle_like();
        let a = base.drifted(42);
        let b = base.drifted(42);
        assert_eq!(a, b, "same seed → same drifted model");
        let c = base.drifted(43);
        assert_ne!(a, c, "different seed → different drift");
        // Drift always worsens error rates and coherence.
        assert!(a.p1 >= base.p1 && a.p2 >= base.p2 && a.readout >= base.readout);
        assert!(a.t1_us < base.t1_us && a.t2_us < base.t2_us);
        assert!(a.p1 <= 0.75 && a.p2 <= 0.75 && a.readout <= 0.5);
        // Drift on an ideal model introduces error: the drifted model is
        // never ideal, so a drift event is always observable.
        let drifted_ideal = NoiseModel::IDEAL.drifted(7);
        assert!(!drifted_ideal.is_ideal());
        assert!(drifted_ideal.t1_us.is_finite());
    }

    #[test]
    fn scaled_clamps_probabilities() {
        let m = NoiseModel::eagle_like().scaled(1e6);
        assert!(m.p1 <= 0.75 && m.p2 <= 0.75 && m.readout <= 0.5);
        assert!(NoiseModel::IDEAL.is_ideal());
        assert!(!NoiseModel::eagle_like().is_ideal());
    }
}
