//! Minimal double-precision complex arithmetic.
//!
//! The statevector simulator is the hottest code path in the workspace, so the
//! complex type is a plain `Copy` struct of two `f64`s with `#[inline]`
//! operators — no external dependency, no generic abstraction overhead.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` — a unit phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` — the measurement probability of an amplitude.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by the imaginary unit (cheaper than a full complex multiply).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplies by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Self {
            re: self.im,
            im: -self.re,
        }
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within `eps` on both components.
    #[inline]
    pub fn approx_eq(self, other: Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::ZERO, C64::new(0.0, 0.0));
        assert_eq!(C64::ONE, C64::new(1.0, 0.0));
        assert_eq!(C64::I, C64::new(0.0, 1.0));
        assert_eq!(C64::real(2.5), C64::new(2.5, 0.0));
        assert_eq!(C64::from(3.0), C64::new(3.0, 0.0));
    }

    #[test]
    fn add_sub() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        assert_eq!(a + b, C64::new(4.0, -2.0));
        assert_eq!(a - b, C64::new(-2.0, 6.0));
        let mut c = a;
        c += b;
        assert_eq!(c, C64::new(4.0, -2.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn mul_matches_expansion() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert_eq!(a * b, C64::new(11.0, 2.0));
        let mut c = a;
        c *= b;
        assert_eq!(c, C64::new(11.0, 2.0));
    }

    #[test]
    fn div_inverts_mul() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        let q = (a * b) / b;
        assert!(q.approx_eq(a, EPS));
    }

    #[test]
    fn conj_and_norm() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        assert!((a.abs() - 5.0).abs() < EPS);
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!(p.approx_eq(C64::real(25.0), EPS));
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = C64::cis(theta);
            assert!((z.norm_sqr() - 1.0).abs() < EPS);
            assert!(
                (z.arg() - theta).rem_euclid(2.0 * std::f64::consts::PI) < 1e-9
                    || (theta - z.arg()).rem_euclid(2.0 * std::f64::consts::PI) < 1e-9
            );
        }
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = C64::new(1.5, -2.5);
        assert!(a.mul_i().approx_eq(a * C64::I, EPS));
        assert!(a.mul_neg_i().approx_eq(a * -C64::I, EPS));
    }

    #[test]
    fn sum_folds() {
        let xs = [C64::new(1.0, 1.0), C64::new(2.0, -3.0), C64::new(-0.5, 0.5)];
        let s: C64 = xs.iter().copied().sum();
        assert!(s.approx_eq(C64::new(2.5, -1.5), EPS));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
