//! Gate definitions and their unitary matrices.
//!
//! Angles are either fixed values or references into a circuit-level parameter
//! vector, which is what makes ansatz circuits (EfficientSU2) re-bindable
//! during VQE optimization without rebuilding the instruction list.

use crate::complex::C64;
use std::f64::consts::FRAC_1_SQRT_2;

/// A 2×2 complex matrix acting on one qubit, row-major.
pub type Mat2 = [[C64; 2]; 2];
/// A 4×4 complex matrix acting on two qubits, row-major,
/// basis order `|q1 q0⟩ ∈ {00, 01, 10, 11}` (little-endian: q0 is bit 0).
pub type Mat4 = [[C64; 4]; 4];

/// A rotation angle: fixed, or an affine function of a bound parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Angle {
    /// A constant angle in radians.
    Fixed(f64),
    /// `scale * θ[index] + offset` where `θ` is the parameter vector bound
    /// at run time. The affine form lets basis lowering rewrite e.g.
    /// `Ry(θ)` into `RZ(θ + π)` without binding early.
    Param { index: u32, scale: f64, offset: f64 },
}

impl Angle {
    /// A plain parameter reference with unit scale and zero offset.
    pub fn param(index: u32) -> Self {
        Angle::Param {
            index,
            scale: 1.0,
            offset: 0.0,
        }
    }

    /// Resolves the angle against a bound parameter vector.
    ///
    /// # Panics
    /// Panics if a parameter index is out of bounds.
    #[inline]
    pub fn resolve(self, params: &[f64]) -> f64 {
        match self {
            Angle::Fixed(v) => v,
            Angle::Param {
                index,
                scale,
                offset,
            } => scale * params[index as usize] + offset,
        }
    }

    /// True if this angle references a run-time parameter.
    pub fn is_parametric(self) -> bool {
        matches!(self, Angle::Param { .. })
    }
}

/// The gate alphabet of the simulator.
///
/// Includes the common textbook set plus IBM Eagle's native gates
/// (`Ecr`, `Sx`, `X`, `Rz`, `Id` — see paper §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Identity (a timing placeholder on hardware).
    Id,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S† = diag(1, -i).
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// √X — native on IBM Eagle.
    Sx,
    /// (√X)†.
    Sxdg,
    /// Rotation about X.
    Rx,
    /// Rotation about Y.
    Ry,
    /// Rotation about Z (virtual/zero-duration on IBM hardware).
    Rz,
    /// Phase gate P(λ) = diag(1, e^{iλ}).
    P,
    /// Controlled-X.
    Cx,
    /// Controlled-Z.
    Cz,
    /// SWAP.
    Swap,
    /// Echoed cross-resonance — the native IBM Eagle entangler.
    Ecr,
    /// ZZ rotation exp(-i θ/2 Z⊗Z).
    Rzz,
}

impl GateKind {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Cx | GateKind::Cz | GateKind::Swap | GateKind::Ecr | GateKind::Rzz => 2,
            _ => 1,
        }
    }

    /// Whether the gate takes an angle.
    pub fn takes_angle(self) -> bool {
        matches!(
            self,
            GateKind::Rx | GateKind::Ry | GateKind::Rz | GateKind::P | GateKind::Rzz
        )
    }

    /// True for gates whose unitary is diagonal in the computational basis.
    ///
    /// Diagonal gates commute with each other, which is what lets the
    /// compiler coalesce runs of them into a single phase pass
    /// (see [`crate::compile`]).
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            GateKind::Id
                | GateKind::Z
                | GateKind::S
                | GateKind::Sdg
                | GateKind::T
                | GateKind::Tdg
                | GateKind::P
                | GateKind::Rz
                | GateKind::Cz
                | GateKind::Rzz
        )
    }

    /// True for two-qubit gates that permute basis states without touching
    /// amplitudes (`Cx`, `Swap`) — the compiler composes runs of these into
    /// one bit-linear permutation pass.
    pub fn is_permutation(self) -> bool {
        matches!(self, GateKind::Cx | GateKind::Swap)
    }

    /// Lowercase OpenQASM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Id => "id",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::H => "h",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Sx => "sx",
            GateKind::Sxdg => "sxdg",
            GateKind::Rx => "rx",
            GateKind::Ry => "ry",
            GateKind::Rz => "rz",
            GateKind::P => "p",
            GateKind::Cx => "cx",
            GateKind::Cz => "cz",
            GateKind::Swap => "swap",
            GateKind::Ecr => "ecr",
            GateKind::Rzz => "rzz",
        }
    }
}

/// Returns the 2×2 unitary for a single-qubit gate.
///
/// `theta` is ignored for non-parameterized gates.
///
/// # Panics
/// Panics if called with a two-qubit gate kind.
pub fn single_qubit_matrix(kind: GateKind, theta: f64) -> Mat2 {
    let z = C64::ZERO;
    let o = C64::ONE;
    match kind {
        GateKind::Id => [[o, z], [z, o]],
        GateKind::X => [[z, o], [o, z]],
        GateKind::Y => [[z, -C64::I], [C64::I, z]],
        GateKind::Z => [[o, z], [z, -o]],
        GateKind::H => {
            let h = C64::real(FRAC_1_SQRT_2);
            [[h, h], [h, -h]]
        }
        GateKind::S => [[o, z], [z, C64::I]],
        GateKind::Sdg => [[o, z], [z, -C64::I]],
        GateKind::T => [[o, z], [z, C64::cis(std::f64::consts::FRAC_PI_4)]],
        GateKind::Tdg => [[o, z], [z, C64::cis(-std::f64::consts::FRAC_PI_4)]],
        GateKind::Sx => {
            // 1/2 [[1+i, 1-i], [1-i, 1+i]]
            let p = C64::new(0.5, 0.5);
            let m = C64::new(0.5, -0.5);
            [[p, m], [m, p]]
        }
        GateKind::Sxdg => {
            let p = C64::new(0.5, 0.5);
            let m = C64::new(0.5, -0.5);
            [[m, p], [p, m]]
        }
        GateKind::Rx => {
            let (s, c) = (theta / 2.0).sin_cos();
            let ms = C64::new(0.0, -s);
            [[C64::real(c), ms], [ms, C64::real(c)]]
        }
        GateKind::Ry => {
            let (s, c) = (theta / 2.0).sin_cos();
            [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]]
        }
        GateKind::Rz => [[C64::cis(-theta / 2.0), z], [z, C64::cis(theta / 2.0)]],
        GateKind::P => [[o, z], [z, C64::cis(theta)]],
        _ => panic!("{kind:?} is not a single-qubit gate"),
    }
}

/// Returns the 4×4 unitary for a two-qubit gate in the little-endian basis
/// `|q1 q0⟩` where `q0` is the *first* operand (control for `Cx`).
///
/// # Panics
/// Panics if called with a single-qubit gate kind.
pub fn two_qubit_matrix(kind: GateKind, theta: f64) -> Mat4 {
    let z = C64::ZERO;
    let o = C64::ONE;
    match kind {
        // Basis index = q1*2 + q0, control = q0 (first operand), target = q1.
        GateKind::Cx => [[o, z, z, z], [z, z, z, o], [z, z, o, z], [z, o, z, z]],
        GateKind::Cz => [[o, z, z, z], [z, o, z, z], [z, z, o, z], [z, z, z, -o]],
        GateKind::Swap => [[o, z, z, z], [z, z, o, z], [z, o, z, z], [z, z, z, o]],
        GateKind::Ecr => {
            // ECR = (IX - YX)/√2 with q0 = control-like operand (IBM convention).
            let k = C64::real(FRAC_1_SQRT_2);
            let ik = C64::new(0.0, FRAC_1_SQRT_2);
            [[z, k, z, ik], [k, z, -ik, z], [z, ik, z, k], [-ik, z, k, z]]
        }
        GateKind::Rzz => {
            let e = C64::cis(-theta / 2.0);
            let ep = C64::cis(theta / 2.0);
            [[e, z, z, z], [z, ep, z, z], [z, z, ep, z], [z, z, z, e]]
        }
        _ => panic!("{kind:?} is not a two-qubit gate"),
    }
}

/// The 2×2 identity matrix.
pub fn mat2_identity() -> Mat2 {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]]
}

/// Matrix product `a · b` of two 2×2 complex matrices.
///
/// Gate fusion composes a run `g₁, g₂, …, gₖ` (program order) into the
/// single unitary `Mₖ ··· M₂ · M₁`, built by left-multiplying each new
/// gate matrix onto the accumulator.
pub fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, entry) in row.iter_mut().enumerate() {
            *entry = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// The `(⟨0|U|0⟩, ⟨1|U|1⟩)` phases of a diagonal single-qubit gate, or
/// `None` if the gate is not single-qubit diagonal.
///
/// `theta` is ignored for non-parameterized gates.
pub fn diagonal_phases(kind: GateKind, theta: f64) -> Option<(C64, C64)> {
    let o = C64::ONE;
    match kind {
        GateKind::Id => Some((o, o)),
        GateKind::Z => Some((o, -o)),
        GateKind::S => Some((o, C64::I)),
        GateKind::Sdg => Some((o, -C64::I)),
        GateKind::T => Some((o, C64::cis(std::f64::consts::FRAC_PI_4))),
        GateKind::Tdg => Some((o, C64::cis(-std::f64::consts::FRAC_PI_4))),
        GateKind::P => Some((o, C64::cis(theta))),
        GateKind::Rz => Some((C64::cis(-theta / 2.0), C64::cis(theta / 2.0))),
        _ => None,
    }
}

/// Checks that `m` is unitary within `eps` (used by tests and the transpiler's
/// equivalence checks).
pub fn is_unitary2(m: &Mat2, eps: f64) -> bool {
    // m * m† == I
    for i in 0..2 {
        for j in 0..2 {
            let mut s = C64::ZERO;
            for k in 0..2 {
                s += m[i][k] * m[j][k].conj();
            }
            let expect = if i == j { C64::ONE } else { C64::ZERO };
            if !s.approx_eq(expect, eps) {
                return false;
            }
        }
    }
    true
}

/// Checks that a 4×4 matrix is unitary within `eps`.
pub fn is_unitary4(m: &Mat4, eps: f64) -> bool {
    for i in 0..4 {
        for j in 0..4 {
            let mut s = C64::ZERO;
            for k in 0..4 {
                s += m[i][k] * m[j][k].conj();
            }
            let expect = if i == j { C64::ONE } else { C64::ZERO };
            if !s.approx_eq(expect, eps) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_SINGLE: [GateKind; 15] = [
        GateKind::Id,
        GateKind::X,
        GateKind::Y,
        GateKind::Z,
        GateKind::H,
        GateKind::S,
        GateKind::Sdg,
        GateKind::T,
        GateKind::Tdg,
        GateKind::Sx,
        GateKind::Sxdg,
        GateKind::Rx,
        GateKind::Ry,
        GateKind::Rz,
        GateKind::P,
    ];

    const ALL_TWO: [GateKind; 5] = [
        GateKind::Cx,
        GateKind::Cz,
        GateKind::Swap,
        GateKind::Ecr,
        GateKind::Rzz,
    ];

    #[test]
    fn all_single_qubit_gates_are_unitary() {
        for kind in ALL_SINGLE {
            for theta in [0.0, 0.3, 1.7, -2.2, std::f64::consts::PI] {
                let m = single_qubit_matrix(kind, theta);
                assert!(is_unitary2(&m, 1e-12), "{kind:?}({theta}) not unitary");
            }
        }
    }

    #[test]
    fn all_two_qubit_gates_are_unitary() {
        for kind in ALL_TWO {
            for theta in [0.0, 0.9, -1.3] {
                let m = two_qubit_matrix(kind, theta);
                assert!(is_unitary4(&m, 1e-12), "{kind:?}({theta}) not unitary");
            }
        }
    }

    #[test]
    fn arity_and_angle_flags() {
        for kind in ALL_SINGLE {
            assert_eq!(kind.arity(), 1);
        }
        for kind in ALL_TWO {
            assert_eq!(kind.arity(), 2);
        }
        assert!(GateKind::Ry.takes_angle());
        assert!(GateKind::Rzz.takes_angle());
        assert!(!GateKind::H.takes_angle());
        assert!(!GateKind::Ecr.takes_angle());
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = single_qubit_matrix(GateKind::Sx, 0.0);
        let x = single_qubit_matrix(GateKind::X, 0.0);
        // (Sx)^2 == X
        for i in 0..2 {
            for j in 0..2 {
                let mut s = C64::ZERO;
                for k in 0..2 {
                    s += sx[i][k] * sx[k][j];
                }
                assert!(s.approx_eq(x[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let m = single_qubit_matrix(GateKind::Rz, 1.0);
        assert!(m[0][1].approx_eq(C64::ZERO, 1e-15));
        assert!(m[1][0].approx_eq(C64::ZERO, 1e-15));
        assert!((m[0][0] * m[1][1]).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn ry_pi_maps_zero_to_one() {
        let m = single_qubit_matrix(GateKind::Ry, std::f64::consts::PI);
        // Ry(π)|0> = |1>
        assert!(m[0][0].approx_eq(C64::ZERO, 1e-12));
        assert!(m[1][0].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn angle_resolution() {
        let params = [0.5, -1.5];
        assert_eq!(Angle::Fixed(2.0).resolve(&params), 2.0);
        assert_eq!(Angle::param(1).resolve(&params), -1.5);
        assert_eq!(
            (Angle::Param {
                index: 0,
                scale: 2.0,
                offset: 0.5
            })
            .resolve(&params),
            1.5
        );
        assert!(Angle::param(0).is_parametric());
        assert!(!Angle::Fixed(0.0).is_parametric());
    }

    #[test]
    fn mnemonics_are_lowercase_unique() {
        let mut seen = std::collections::HashSet::new();
        for kind in ALL_SINGLE.iter().chain(ALL_TWO.iter()) {
            let m = kind.mnemonic();
            assert_eq!(m, m.to_lowercase());
            assert!(seen.insert(m), "duplicate mnemonic {m}");
        }
    }
}
