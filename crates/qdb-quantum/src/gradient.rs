//! Parameter-shift gradients for variational circuits.
//!
//! Every parametric gate in the ansatz alphabet is a Pauli rotation
//! (`Ry`, `Rz`, `Rx`, generator eigenvalues ±½), so the exact gradient of
//! any expectation value follows the two-point parameter-shift rule
//!
//! `∂E/∂θᵢ = ½ [E(θᵢ + π/2) − E(θᵢ − π/2)]`
//!
//! evaluated with the same machinery hardware uses — no finite-difference
//! error, compatible with shot-based estimation. The paper's pipeline is
//! gradient-free (COBYLA); this module supports gradient-based ablations
//! and downstream users who want them.

use crate::circuit::Circuit;
use crate::compile::CompiledCircuit;
use crate::exec::SimWorkspace;
use crate::statevector::Statevector;
use std::f64::consts::FRAC_PI_2;

/// Evaluates `E(θ) = ⟨ψ(θ)| diag |ψ(θ)⟩` for a parametric circuit.
///
/// One-shot reference path (direct gate-by-gate application). Repeated
/// evaluation should compile once and go through [`SimWorkspace::energy`].
pub fn expectation(circuit: &Circuit, params: &[f64], diagonal: &[f64]) -> f64 {
    let mut sv = Statevector::zero(circuit.num_qubits());
    sv.apply_parametric(circuit, params);
    sv.expectation_diagonal(diagonal)
}

/// Exact gradient of the diagonal expectation by the parameter-shift rule
/// (2 evaluations per parameter), compiling the circuit once and streaming
/// all `2P` evaluations through one fresh workspace.
pub fn parameter_shift_gradient(circuit: &Circuit, params: &[f64], diagonal: &[f64]) -> Vec<f64> {
    let compiled = CompiledCircuit::compile(circuit);
    let mut ws = SimWorkspace::new(circuit.num_qubits());
    parameter_shift_gradient_ws(&compiled, params, diagonal, &mut ws)
}

/// [`parameter_shift_gradient`] against a pre-compiled circuit and caller
/// workspace — allocation-free after warmup (the shifted parameter vector
/// is mutated in place).
pub fn parameter_shift_gradient_ws(
    compiled: &CompiledCircuit,
    params: &[f64],
    diagonal: &[f64],
    ws: &mut SimWorkspace,
) -> Vec<f64> {
    assert_eq!(
        compiled.num_params(),
        params.len(),
        "parameter count mismatch"
    );
    let mut gradient = Vec::with_capacity(params.len());
    let mut shifted = params.to_vec();
    for i in 0..params.len() {
        shifted[i] = params[i] + FRAC_PI_2;
        let plus = ws.energy(compiled, &shifted, diagonal);
        shifted[i] = params[i] - FRAC_PI_2;
        let minus = ws.energy(compiled, &shifted, diagonal);
        shifted[i] = params[i];
        gradient.push(0.5 * (plus - minus));
    }
    gradient
}

/// Simple gradient descent on a diagonal expectation — the minimal
/// gradient-based VQE loop enabled by [`parameter_shift_gradient`]. The
/// circuit is compiled once and every evaluation of every step reuses the
/// same workspace.
pub fn gradient_descent(
    circuit: &Circuit,
    x0: &[f64],
    diagonal: &[f64],
    learning_rate: f64,
    steps: usize,
) -> (Vec<f64>, f64) {
    let compiled = CompiledCircuit::compile(circuit);
    let mut ws = SimWorkspace::new(circuit.num_qubits());
    let mut x = x0.to_vec();
    for _ in 0..steps {
        let g = parameter_shift_gradient_ws(&compiled, &x, diagonal, &mut ws);
        for (xi, gi) in x.iter_mut().zip(&g) {
            *xi -= learning_rate * gi;
        }
    }
    let e = ws.energy(&compiled, &x, diagonal);
    (x, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{efficient_su2, Entanglement};

    fn test_diag(n: usize) -> Vec<f64> {
        (0..1usize << n)
            .map(|i| (i as f64) * 0.3 - (i % 3) as f64)
            .collect()
    }

    #[test]
    fn matches_finite_differences() {
        let c = efficient_su2(3, 1, Entanglement::Linear);
        let diag = test_diag(3);
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.3 + 0.11 * i as f64).collect();
        let analytic = parameter_shift_gradient(&c, &params, &diag);
        let h = 1e-5;
        for i in 0..params.len() {
            let mut p = params.clone();
            p[i] += h;
            let plus = expectation(&c, &p, &diag);
            p[i] = params[i] - h;
            let minus = expectation(&c, &p, &diag);
            let numeric = (plus - minus) / (2.0 * h);
            assert!(
                (analytic[i] - numeric).abs() < 1e-6,
                "param {i}: shift {} vs fd {numeric}",
                analytic[i]
            );
        }
    }

    #[test]
    fn gradient_zero_at_symmetric_point() {
        // All-zero angles on a symmetric diagonal: Ry(0) stationary for
        // the identity-state expectation of diag whose first derivative
        // cancels. Use a diag symmetric under bit flips of qubit 0.
        let c = efficient_su2(2, 1, Entanglement::Linear);
        let diag = vec![1.0, 1.0, 5.0, 5.0]; // independent of qubit 0
        let params = vec![0.0; c.num_params()];
        let g = parameter_shift_gradient(&c, &params, &diag);
        // Parameters on qubit 0 have zero gradient.
        assert!(g.iter().any(|v| v.abs() < 1e-12));
    }

    #[test]
    fn descent_reduces_energy() {
        let c = efficient_su2(3, 1, Entanglement::Linear);
        let diag = test_diag(3);
        let x0: Vec<f64> = (0..c.num_params()).map(|i| 0.2 + 0.05 * i as f64).collect();
        let e0 = expectation(&c, &x0, &diag);
        let (_, e) = gradient_descent(&c, &x0, &diag, 0.1, 30);
        assert!(e < e0, "descent should reduce energy: {e} vs {e0}");
        let min = diag.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(e >= min - 1e-9, "cannot beat the diagonal minimum");
    }

    #[test]
    fn rejects_wrong_parameter_count() {
        let c = efficient_su2(2, 1, Entanglement::Linear);
        let diag = test_diag(2);
        let result = std::panic::catch_unwind(|| parameter_shift_gradient(&c, &[0.0], &diag));
        assert!(result.is_err());
    }
}
