//! Shot sampling from a statevector.
//!
//! The paper's second execution stage fixes the optimized circuit and draws
//! 100,000 shots (§5.2). Sampling uses the sorted-uniforms merge: draw all
//! shot positions, sort them, and sweep the probability mass once — O(D +
//! S·log S) with no cumulative array allocation.

use crate::statevector::Statevector;
use rand::Rng;
use std::collections::HashMap;

/// Measurement outcomes: basis-state index → count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counts {
    shots: u64,
    counts: HashMap<u64, u64>,
}

impl Counts {
    /// Builds from a raw map.
    pub fn from_map(counts: HashMap<u64, u64>) -> Self {
        let shots = counts.values().sum();
        Self { shots, counts }
    }

    /// Total number of shots.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Count for a specific outcome.
    pub fn get(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Iterates `(outcome, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct outcomes observed.
    pub fn num_outcomes(&self) -> usize {
        self.counts.len()
    }

    /// Outcomes sorted by decreasing count (ties broken by outcome index for
    /// determinism).
    pub fn sorted_by_count(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The most frequent outcome, if any shots were taken.
    pub fn most_common(&self) -> Option<(u64, u64)> {
        self.sorted_by_count().into_iter().next()
    }

    /// Empirical probability of an outcome.
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.get(outcome) as f64 / self.shots as f64
        }
    }

    /// Applies an independent per-bit readout flip with probability
    /// `flip_prob` to every shot, redistributing counts (models readout
    /// error after sampling).
    pub fn with_readout_error<R: Rng>(
        &self,
        num_bits: usize,
        flip_prob: f64,
        rng: &mut R,
    ) -> Counts {
        if flip_prob <= 0.0 {
            return self.clone();
        }
        let mut out: HashMap<u64, u64> = HashMap::with_capacity(self.counts.len());
        // Iterate in sorted outcome order: HashMap order varies across
        // processes and would desynchronize the RNG stream, breaking
        // cross-process determinism.
        let mut ordered: Vec<(u64, u64)> = self.iter().collect();
        ordered.sort_unstable();
        for (outcome, count) in ordered {
            for _ in 0..count {
                let mut v = outcome;
                for b in 0..num_bits {
                    if rng.gen::<f64>() < flip_prob {
                        v ^= 1 << b;
                    }
                }
                *out.entry(v).or_insert(0) += 1;
            }
        }
        Counts::from_map(out)
    }
}

/// Samples `shots` measurement outcomes from the state's Born distribution.
pub fn sample_counts<R: Rng>(sv: &Statevector, shots: u64, rng: &mut R) -> Counts {
    let mut positions: Vec<f64> = (0..shots).map(|_| rng.gen::<f64>()).collect();
    positions.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut cumulative = 0.0f64;
    let mut shot_idx = 0usize;
    for (state, amp) in sv.amplitudes().iter().enumerate() {
        cumulative += amp.norm_sqr();
        let mut here = 0u64;
        while shot_idx < positions.len() && positions[shot_idx] < cumulative {
            here += 1;
            shot_idx += 1;
        }
        if here > 0 {
            *counts.entry(state as u64).or_insert(0) += here;
        }
        if shot_idx == positions.len() {
            break;
        }
    }
    // Floating-point slack: any stragglers beyond total mass land on the
    // last nonzero-probability state.
    if shot_idx < positions.len() {
        if let Some((state, _)) = sv
            .amplitudes()
            .iter()
            .enumerate()
            .rev()
            .find(|(_, a)| a.norm_sqr() > 0.0)
        {
            *counts.entry(state as u64).or_insert(0) += (positions.len() - shot_idx) as u64;
        }
    }
    Counts::from_map(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deterministic_state_sampling() {
        let mut sv = Statevector::zero(3);
        sv.apply_single(crate::gate::GateKind::X, 1, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let counts = sample_counts(&sv, 1000, &mut rng);
        assert_eq!(counts.shots(), 1000);
        assert_eq!(counts.get(0b010), 1000);
        assert_eq!(counts.num_outcomes(), 1);
    }

    #[test]
    fn bell_sampling_is_balanced() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = Statevector::zero(2);
        sv.apply_circuit(&c);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let counts = sample_counts(&sv, 20_000, &mut rng);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0);
        let p0 = counts.probability(0b00);
        assert!((p0 - 0.5).abs() < 0.02, "p(00)={p0}");
    }

    #[test]
    fn sampling_is_seed_reproducible() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.ry(q, 0.3 + q as f64);
        }
        c.cx(0, 1).cx(2, 3);
        let mut sv = Statevector::zero(4);
        sv.apply_circuit(&c);
        let a = sample_counts(&sv, 5000, &mut ChaCha8Rng::seed_from_u64(1));
        let b = sample_counts(&sv, 5000, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
        let cdiff = sample_counts(&sv, 5000, &mut ChaCha8Rng::seed_from_u64(2));
        assert_ne!(a, cdiff);
    }

    #[test]
    fn readout_error_perturbs_counts() {
        let sv = Statevector::zero(4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let clean = sample_counts(&sv, 2000, &mut rng);
        assert_eq!(clean.get(0), 2000);
        let noisy = clean.with_readout_error(4, 0.05, &mut rng);
        assert_eq!(noisy.shots(), 2000);
        assert!(noisy.get(0) < 2000, "readout error should flip some shots");
        assert!(
            noisy.get(0) > 1400,
            "5% per-bit flip keeps most shots intact"
        );
    }

    #[test]
    fn most_common_and_sorting() {
        let mut m = HashMap::new();
        m.insert(5u64, 10u64);
        m.insert(2u64, 30u64);
        m.insert(9u64, 10u64);
        let counts = Counts::from_map(m);
        assert_eq!(counts.most_common(), Some((2, 30)));
        let sorted = counts.sorted_by_count();
        assert_eq!(sorted[0], (2, 30));
        assert_eq!(sorted[1], (5, 10)); // tie broken by outcome index
        assert_eq!(sorted[2], (9, 10));
    }
}
