//! Parameterized quantum circuits.
//!
//! A [`Circuit`] is an ordered list of [`Instruction`]s over `n` qubits plus a
//! declared parameter count. Ansatz circuits keep [`Angle::Param`] references
//! so VQE can re-evaluate the same circuit under hundreds of parameter
//! bindings without reallocation.

use crate::gate::{Angle, GateKind};

/// One gate application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Instruction {
    /// Which gate.
    pub kind: GateKind,
    /// First operand qubit (control for `Cx`).
    pub q0: u32,
    /// Second operand qubit (`u32::MAX` for single-qubit gates).
    pub q1: u32,
    /// Rotation angle, if the gate takes one.
    pub angle: Option<Angle>,
}

impl Instruction {
    /// The qubits this instruction touches (1 or 2 entries).
    pub fn qubits(&self) -> impl Iterator<Item = u32> + '_ {
        let second = if self.kind.arity() == 2 {
            Some(self.q1)
        } else {
            None
        };
        std::iter::once(self.q0).chain(second)
    }
}

/// A quantum circuit over `num_qubits` qubits with `num_params` free
/// parameters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    num_params: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            num_params: 0,
            instructions: Vec::new(),
        }
    }

    /// Rebuilds a circuit from raw parts (used by the transpiler, which
    /// rewrites instruction lists while preserving the parameter space).
    ///
    /// # Panics
    /// Panics if any instruction references an out-of-range qubit or
    /// parameter.
    pub fn from_parts(
        num_qubits: usize,
        num_params: usize,
        instructions: Vec<Instruction>,
    ) -> Self {
        for instr in &instructions {
            for q in instr.qubits() {
                assert!((q as usize) < num_qubits, "qubit {q} out of range");
            }
            if let Some(Angle::Param { index, .. }) = instr.angle {
                assert!(
                    (index as usize) < num_params,
                    "parameter {index} out of range"
                );
            }
        }
        Self {
            num_qubits,
            num_params,
            instructions,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of declared free parameters.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The instruction list, in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Total gate count.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Declares a fresh free parameter and returns its index.
    pub fn new_param(&mut self) -> u32 {
        let idx = self.num_params as u32;
        self.num_params += 1;
        idx
    }

    fn check_qubit(&self, q: u32) {
        assert!(
            (q as usize) < self.num_qubits,
            "qubit {q} out of range for {}-qubit circuit",
            self.num_qubits
        );
    }

    /// Appends a single-qubit gate.
    ///
    /// # Panics
    /// Panics if the qubit is out of range or the gate arity is wrong.
    pub fn push1(&mut self, kind: GateKind, q: u32, angle: Option<Angle>) -> &mut Self {
        assert_eq!(kind.arity(), 1, "{kind:?} is not single-qubit");
        assert_eq!(
            kind.takes_angle(),
            angle.is_some(),
            "angle mismatch for {kind:?}"
        );
        self.check_qubit(q);
        self.instructions.push(Instruction {
            kind,
            q0: q,
            q1: u32::MAX,
            angle,
        });
        self
    }

    /// Appends a two-qubit gate.
    ///
    /// # Panics
    /// Panics if a qubit is out of range, the qubits coincide, or arity is wrong.
    pub fn push2(&mut self, kind: GateKind, q0: u32, q1: u32, angle: Option<Angle>) -> &mut Self {
        assert_eq!(kind.arity(), 2, "{kind:?} is not two-qubit");
        assert_eq!(
            kind.takes_angle(),
            angle.is_some(),
            "angle mismatch for {kind:?}"
        );
        assert_ne!(q0, q1, "two-qubit gate on identical qubits");
        self.check_qubit(q0);
        self.check_qubit(q1);
        self.instructions.push(Instruction {
            kind,
            q0,
            q1,
            angle,
        });
        self
    }

    // -- convenience builders -------------------------------------------------

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push1(GateKind::X, q, None)
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push1(GateKind::H, q, None)
    }

    /// √X on `q`.
    pub fn sx(&mut self, q: u32) -> &mut Self {
        self.push1(GateKind::Sx, q, None)
    }

    /// Fixed-angle Ry.
    pub fn ry(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push1(GateKind::Ry, q, Some(Angle::Fixed(theta)))
    }

    /// Fixed-angle Rz.
    pub fn rz(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push1(GateKind::Rz, q, Some(Angle::Fixed(theta)))
    }

    /// Fixed-angle Rx.
    pub fn rx(&mut self, q: u32, theta: f64) -> &mut Self {
        self.push1(GateKind::Rx, q, Some(Angle::Fixed(theta)))
    }

    /// Ry bound to a fresh parameter; returns the parameter index.
    pub fn ry_param(&mut self, q: u32) -> u32 {
        let p = self.new_param();
        self.push1(GateKind::Ry, q, Some(Angle::param(p)));
        p
    }

    /// Rz bound to a fresh parameter; returns the parameter index.
    pub fn rz_param(&mut self, q: u32) -> u32 {
        let p = self.new_param();
        self.push1(GateKind::Rz, q, Some(Angle::param(p)));
        p
    }

    /// CNOT with control `c`, target `t`.
    pub fn cx(&mut self, c: u32, t: u32) -> &mut Self {
        self.push2(GateKind::Cx, c, t, None)
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push2(GateKind::Cz, a, b, None)
    }

    /// SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.push2(GateKind::Swap, a, b, None)
    }

    /// Echoed cross resonance.
    pub fn ecr(&mut self, a: u32, b: u32) -> &mut Self {
        self.push2(GateKind::Ecr, a, b, None)
    }

    /// Appends all instructions of `other` (same width required).
    ///
    /// Parameter indices of `other` are shifted past this circuit's
    /// parameters so both parameter sets stay distinct.
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn compose(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "width mismatch in compose"
        );
        let shift = self.num_params as u32;
        for instr in &other.instructions {
            let angle = instr.angle.map(|a| match a {
                Angle::Fixed(v) => Angle::Fixed(v),
                Angle::Param {
                    index,
                    scale,
                    offset,
                } => Angle::Param {
                    index: index + shift,
                    scale,
                    offset,
                },
            });
            self.instructions.push(Instruction { angle, ..*instr });
        }
        self.num_params += other.num_params;
        self
    }

    /// Returns a copy with every parametric angle replaced by its bound value.
    ///
    /// # Panics
    /// Panics if `params.len() != self.num_params()`.
    pub fn bind(&self, params: &[f64]) -> Circuit {
        assert_eq!(
            params.len(),
            self.num_params,
            "expected {} parameters, got {}",
            self.num_params,
            params.len()
        );
        let instructions = self
            .instructions
            .iter()
            .map(|instr| Instruction {
                angle: instr.angle.map(|a| Angle::Fixed(a.resolve(params))),
                ..*instr
            })
            .collect();
        Circuit {
            num_qubits: self.num_qubits,
            num_params: 0,
            instructions,
        }
    }

    /// Circuit depth: the length of the longest qubit-occupancy chain,
    /// computed by greedy ASAP leveling (identical to Qiskit's `depth()`).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for instr in &self.instructions {
            let l = instr.qubits().map(|q| level[q as usize]).max().unwrap_or(0) + 1;
            for q in instr.qubits() {
                level[q as usize] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// Counts gates of each kind, as `(mnemonic, count)` sorted by mnemonic.
    pub fn gate_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for instr in &self.instructions {
            *counts.entry(instr.kind.mnemonic()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Number of two-qubit gates (the error-dominating resource on hardware).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.kind.arity() == 2)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).ry(2, 0.3);
        assert_eq!(c.len(), 4);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.gate_counts(), vec![("cx", 2), ("h", 1), ("ry", 1)]);
    }

    #[test]
    fn depth_greedy_leveling() {
        let mut c = Circuit::new(3);
        // h(0) and h(1) are level 1; cx(0,1) level 2; x(2) level 1.
        c.h(0).h(1).x(2).cx(0, 1);
        assert_eq!(c.depth(), 2);
        // Serial chain grows depth linearly.
        let mut chain = Circuit::new(1);
        for _ in 0..7 {
            chain.x(0);
        }
        assert_eq!(chain.depth(), 7);
    }

    #[test]
    fn parametric_binding() {
        let mut c = Circuit::new(2);
        let p0 = c.ry_param(0);
        let p1 = c.rz_param(1);
        c.cx(0, 1);
        assert_eq!(c.num_params(), 2);
        assert_eq!((p0, p1), (0, 1));

        let bound = c.bind(&[0.5, -0.25]);
        assert_eq!(bound.num_params(), 0);
        let angles: Vec<f64> = bound
            .instructions()
            .iter()
            .filter_map(|i| i.angle.map(|a| a.resolve(&[])))
            .collect();
        assert_eq!(angles, vec![0.5, -0.25]);
    }

    #[test]
    #[should_panic(expected = "expected 2 parameters")]
    fn bind_wrong_arity_panics() {
        let mut c = Circuit::new(1);
        c.ry_param(0);
        c.rz_param(0);
        let _ = c.bind(&[1.0]);
    }

    #[test]
    fn compose_shifts_params() {
        let mut a = Circuit::new(2);
        a.ry_param(0);
        let mut b = Circuit::new(2);
        b.ry_param(1);
        a.compose(&b);
        assert_eq!(a.num_params(), 2);
        let last = a.instructions().last().unwrap();
        assert_eq!(last.angle, Some(Angle::param(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_bounds_checked() {
        let mut c = Circuit::new(2);
        c.x(2);
    }

    #[test]
    #[should_panic(expected = "identical qubits")]
    fn two_qubit_distinct() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }
}
