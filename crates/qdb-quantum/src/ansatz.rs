//! Hardware-efficient variational ansatz circuits.
//!
//! The paper (§4.3.2) uses Qiskit's `EfficientSU2`: alternating layers of
//! parameterized Ry·Rz rotations with linear nearest-neighbour entanglement.
//! We reproduce that construction exactly, plus the lighter `RealAmplitudes`
//! variant used in ablations.

use crate::circuit::Circuit;

/// Entanglement topology of the two-qubit layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Entanglement {
    /// `cx(q, q+1)` for q = 0..n-1 — the paper's choice ("entangling gates
    /// among adjacent qubits", §4.3.2).
    Linear,
    /// Linear plus the closing `cx(n-1, 0)`.
    Circular,
    /// All ordered pairs (i < j) — expensive, used only in small ablations.
    Full,
}

fn entangle(c: &mut Circuit, n: u32, ent: Entanglement) {
    match ent {
        Entanglement::Linear => {
            for q in 0..n.saturating_sub(1) {
                c.cx(q, q + 1);
            }
        }
        Entanglement::Circular => {
            for q in 0..n.saturating_sub(1) {
                c.cx(q, q + 1);
            }
            if n > 2 {
                c.cx(n - 1, 0);
            }
        }
        Entanglement::Full => {
            for i in 0..n {
                for j in (i + 1)..n {
                    c.cx(i, j);
                }
            }
        }
    }
}

/// Builds an `EfficientSU2(n, reps)` circuit: `reps + 1` rotation layers of
/// Ry then Rz on every qubit, with an entanglement block between consecutive
/// rotation layers. Parameter count is `2 · n · (reps + 1)`.
pub fn efficient_su2(num_qubits: usize, reps: usize, ent: Entanglement) -> Circuit {
    let n = num_qubits as u32;
    let mut c = Circuit::new(num_qubits);
    for layer in 0..=reps {
        for q in 0..n {
            c.ry_param(q);
        }
        for q in 0..n {
            c.rz_param(q);
        }
        if layer < reps {
            entangle(&mut c, n, ent);
        }
    }
    c
}

/// Builds a `RealAmplitudes(n, reps)` circuit: Ry layers only (keeps
/// amplitudes real), `n · (reps + 1)` parameters.
pub fn real_amplitudes(num_qubits: usize, reps: usize, ent: Entanglement) -> Circuit {
    let n = num_qubits as u32;
    let mut c = Circuit::new(num_qubits);
    for layer in 0..=reps {
        for q in 0..n {
            c.ry_param(q);
        }
        if layer < reps {
            entangle(&mut c, n, ent);
        }
    }
    c
}

/// Logical depth of `efficient_su2` under greedy leveling; useful for
/// resource estimates before transpilation.
pub fn efficient_su2_logical_depth(num_qubits: usize, reps: usize) -> usize {
    efficient_su2(num_qubits, reps, Entanglement::Linear).depth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::Statevector;

    #[test]
    fn parameter_counts() {
        for (n, reps) in [(2, 1), (4, 2), (7, 3), (12, 3)] {
            let c = efficient_su2(n, reps, Entanglement::Linear);
            assert_eq!(c.num_params(), 2 * n * (reps + 1));
            let r = real_amplitudes(n, reps, Entanglement::Linear);
            assert_eq!(r.num_params(), n * (reps + 1));
        }
    }

    #[test]
    fn entanglement_gate_counts() {
        let lin = efficient_su2(5, 2, Entanglement::Linear);
        assert_eq!(lin.two_qubit_gate_count(), 2 * 4);
        let circ = efficient_su2(5, 2, Entanglement::Circular);
        assert_eq!(circ.two_qubit_gate_count(), 2 * 5);
        let full = efficient_su2(5, 1, Entanglement::Full);
        assert_eq!(full.two_qubit_gate_count(), 10);
    }

    #[test]
    fn zero_params_give_identity_distribution() {
        // All-zero angles: Ry(0)=Rz(0)=I, so the state stays |0…0⟩.
        let c = efficient_su2(4, 2, Entanglement::Linear);
        let params = vec![0.0; c.num_params()];
        let mut sv = Statevector::zero(4);
        sv.apply_parametric(&c, &params);
        assert!((sv.probabilities()[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn nonzero_params_spread_probability() {
        let c = efficient_su2(4, 2, Entanglement::Linear);
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.1 + 0.07 * i as f64).collect();
        let mut sv = Statevector::zero(4);
        sv.apply_parametric(&c, &params);
        let p = sv.probabilities();
        let support = p.iter().filter(|&&x| x > 1e-6).count();
        assert!(
            support > 4,
            "expressive ansatz should spread support, got {support}"
        );
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn real_amplitudes_state_is_real() {
        let c = real_amplitudes(3, 2, Entanglement::Linear);
        let params: Vec<f64> = (0..c.num_params())
            .map(|i| 0.3 * (i as f64 + 1.0))
            .collect();
        let mut sv = Statevector::zero(3);
        sv.apply_parametric(&c, &params);
        for a in sv.amplitudes() {
            assert!(
                a.im.abs() < 1e-12,
                "RealAmplitudes must keep amplitudes real"
            );
        }
    }

    #[test]
    fn single_qubit_edge_case() {
        let c = efficient_su2(1, 2, Entanglement::Linear);
        assert_eq!(c.two_qubit_gate_count(), 0);
        assert_eq!(c.num_params(), 6);
    }
}
