//! Pauli strings and sparse Pauli-sum operators.
//!
//! Strings use the symplectic `(x_mask, z_mask)` representation: bit `q` of
//! `x_mask` set means an X (or Y) factor on qubit `q`; bit `q` of `z_mask`
//! means a Z (or Y) factor; both set means Y. This makes multiplication and
//! expectation values cheap bit arithmetic.

use crate::complex::C64;
use crate::statevector::Statevector;
use rayon::prelude::*;
use std::fmt;

/// A single tensor product of Pauli factors over up to 64 qubits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PauliString {
    /// X component bits (X or Y positions).
    pub x_mask: u64,
    /// Z component bits (Z or Y positions).
    pub z_mask: u64,
}

impl PauliString {
    /// The identity string.
    pub const IDENTITY: PauliString = PauliString {
        x_mask: 0,
        z_mask: 0,
    };

    /// A single Z factor on qubit `q`.
    pub fn z(q: usize) -> Self {
        Self {
            x_mask: 0,
            z_mask: 1 << q,
        }
    }

    /// A single X factor on qubit `q`.
    pub fn x(q: usize) -> Self {
        Self {
            x_mask: 1 << q,
            z_mask: 0,
        }
    }

    /// A single Y factor on qubit `q`.
    pub fn y(q: usize) -> Self {
        Self {
            x_mask: 1 << q,
            z_mask: 1 << q,
        }
    }

    /// Z⊗Z on two qubits.
    pub fn zz(a: usize, b: usize) -> Self {
        Self {
            x_mask: 0,
            z_mask: (1 << a) | (1 << b),
        }
    }

    /// Parses a Qiskit-style label, leftmost character = highest qubit.
    ///
    /// # Panics
    /// Panics on characters outside `IXYZ` or labels longer than 64.
    pub fn from_label(label: &str) -> Self {
        assert!(label.len() <= 64, "label too long");
        let mut x_mask = 0u64;
        let mut z_mask = 0u64;
        let n = label.len();
        for (i, ch) in label.chars().enumerate() {
            let q = n - 1 - i;
            match ch {
                'I' => {}
                'X' => x_mask |= 1 << q,
                'Y' => {
                    x_mask |= 1 << q;
                    z_mask |= 1 << q;
                }
                'Z' => z_mask |= 1 << q,
                _ => panic!("invalid Pauli character {ch:?}"),
            }
        }
        Self { x_mask, z_mask }
    }

    /// Renders the label over `n` qubits (leftmost = highest qubit).
    pub fn to_label(self, n: usize) -> String {
        (0..n)
            .rev()
            .map(|q| {
                let x = self.x_mask >> q & 1 != 0;
                let z = self.z_mask >> q & 1 != 0;
                match (x, z) {
                    (false, false) => 'I',
                    (true, false) => 'X',
                    (true, true) => 'Y',
                    (false, true) => 'Z',
                }
            })
            .collect()
    }

    /// True when the string contains no X/Y factor (diagonal in the
    /// computational basis).
    pub fn is_diagonal(self) -> bool {
        self.x_mask == 0
    }

    /// Number of non-identity factors.
    pub fn weight(self) -> u32 {
        (self.x_mask | self.z_mask).count_ones()
    }

    /// Number of Y factors.
    pub fn y_count(self) -> u32 {
        (self.x_mask & self.z_mask).count_ones()
    }

    /// The phase `P|j⟩ = phase(j) |j ⊕ x_mask⟩`.
    #[inline]
    pub fn phase_on(self, j: u64) -> C64 {
        let sign = if (j & self.z_mask).count_ones() & 1 == 0 {
            1.0
        } else {
            -1.0
        };
        match self.y_count() % 4 {
            0 => C64::real(sign),
            1 => C64::new(0.0, sign),
            2 => C64::real(-sign),
            _ => C64::new(0.0, -sign),
        }
    }

    /// Multiplies two strings, returning `(phase, product)` with
    /// `A · B = phase · product`.
    pub fn mul(self, other: PauliString) -> (C64, PauliString) {
        // Using P = i^{y} X^{x} Z^{z} normal form:
        // A·B picks up (-1)^{|z_A & x_B|} when commuting Z_A past X_B,
        // and the i^{y} prefactors recombine.
        let x = self.x_mask ^ other.x_mask;
        let z = self.z_mask ^ other.z_mask;
        let prod = PauliString {
            x_mask: x,
            z_mask: z,
        };
        // phase = i^{yA + yB - yAB} * (-1)^{|zA & xB|}
        let ya = self.y_count() as i32;
        let yb = other.y_count() as i32;
        let yab = prod.y_count() as i32;
        let mut ipow = (ya + yb - yab).rem_euclid(4);
        if (self.z_mask & other.x_mask).count_ones() & 1 == 1 {
            ipow = (ipow + 2) % 4;
        }
        let phase = match ipow {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        (phase, prod)
    }

    /// True when the two strings commute.
    pub fn commutes_with(self, other: PauliString) -> bool {
        let anti =
            (self.x_mask & other.z_mask).count_ones() + (self.z_mask & other.x_mask).count_ones();
        anti % 2 == 0
    }

    /// ⟨ψ|P|ψ⟩ for this string alone.
    pub fn expectation(self, sv: &Statevector) -> f64 {
        expectation_term(sv, self)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = 64 - (self.x_mask | self.z_mask | 1).leading_zeros() as usize;
        write!(f, "{}", self.to_label(n.max(1)))
    }
}

fn expectation_term(sv: &Statevector, p: PauliString) -> f64 {
    let amps = sv.amplitudes();
    let x = p.x_mask as usize;
    let acc = |j: usize| -> f64 {
        let contrib = amps[j ^ x].conj() * p.phase_on(j as u64) * amps[j];
        contrib.re
    };
    if amps.len() >= (1 << 12) {
        (0..amps.len()).into_par_iter().map(acc).sum()
    } else {
        (0..amps.len()).map(acc).sum()
    }
}

/// A real-coefficient (Hermitian) sum of Pauli strings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparsePauliOp {
    num_qubits: usize,
    terms: Vec<(PauliString, f64)>,
}

impl SparsePauliOp {
    /// The zero operator over `n` qubits.
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 64);
        Self {
            num_qubits,
            terms: Vec::new(),
        }
    }

    /// Builds from raw `(string, coefficient)` pairs.
    pub fn from_terms(num_qubits: usize, terms: Vec<(PauliString, f64)>) -> Self {
        let mut op = Self { num_qubits, terms };
        op.simplify();
        op
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The term list.
    pub fn terms(&self) -> &[(PauliString, f64)] {
        &self.terms
    }

    /// Number of terms after simplification.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the operator has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff · P` to the sum.
    pub fn add_term(&mut self, p: PauliString, coeff: f64) {
        if coeff != 0.0 {
            self.terms.push((p, coeff));
        }
    }

    /// Adds a constant (identity) offset.
    pub fn add_constant(&mut self, c: f64) {
        self.add_term(PauliString::IDENTITY, c);
    }

    /// Adds every term of `other` scaled by `scale`.
    pub fn add_scaled(&mut self, other: &SparsePauliOp, scale: f64) {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        for &(p, c) in &other.terms {
            self.add_term(p, c * scale);
        }
        self.simplify();
    }

    /// Merges duplicate strings and drops negligible coefficients.
    pub fn simplify(&mut self) {
        let mut map: std::collections::HashMap<PauliString, f64> =
            std::collections::HashMap::with_capacity(self.terms.len());
        for &(p, c) in &self.terms {
            *map.entry(p).or_insert(0.0) += c;
        }
        self.terms = map.into_iter().filter(|&(_, c)| c.abs() > 1e-14).collect();
        // Deterministic order for reproducible iteration.
        self.terms
            .sort_by_key(|&(p, _)| (p.weight(), p.z_mask, p.x_mask));
    }

    /// True when every term is diagonal (Z/I only).
    pub fn is_diagonal(&self) -> bool {
        self.terms.iter().all(|(p, _)| p.is_diagonal())
    }

    /// Expands a diagonal operator into its dense diagonal of length `2^n`.
    ///
    /// # Panics
    /// Panics if the operator has off-diagonal terms or is too wide.
    pub fn to_diagonal(&self) -> Vec<f64> {
        assert!(self.is_diagonal(), "operator has off-diagonal terms");
        assert!(
            self.num_qubits <= 30,
            "diagonal expansion limited to 30 qubits"
        );
        let dim = 1usize << self.num_qubits;
        let terms = &self.terms;
        let eval = |i: usize| -> f64 {
            terms
                .iter()
                .map(|&(p, c)| {
                    if (i as u64 & p.z_mask).count_ones() & 1 == 0 {
                        c
                    } else {
                        -c
                    }
                })
                .sum()
        };
        if dim >= (1 << 12) {
            (0..dim).into_par_iter().map(eval).collect()
        } else {
            (0..dim).map(eval).collect()
        }
    }

    /// Decomposes a dense diagonal into a Z-string Pauli sum via the
    /// Walsh–Hadamard transform: `diag[x] = Σ_m c_m (−1)^{popcount(x & m)}`
    /// with `c_m = 2^{−n} Σ_x diag[x] (−1)^{popcount(x & m)}`.
    ///
    /// Coefficients below `eps` in magnitude are dropped. Exact inverse of
    /// [`SparsePauliOp::to_diagonal`] for diagonal operators.
    ///
    /// # Panics
    /// Panics if the length is not a power of two or exceeds 2^20.
    pub fn from_diagonal(diag: &[f64], eps: f64) -> SparsePauliOp {
        assert!(diag.len().is_power_of_two(), "diagonal length must be 2^n");
        assert!(
            diag.len() <= 1 << 20,
            "diagonal too large for Pauli decomposition"
        );
        let n = diag.len().trailing_zeros() as usize;
        let mut a = diag.to_vec();
        let mut h = 1usize;
        while h < a.len() {
            for chunk in a.chunks_mut(2 * h) {
                let (lo, hi) = chunk.split_at_mut(h);
                for i in 0..h {
                    let (x, y) = (lo[i], hi[i]);
                    lo[i] = x + y;
                    hi[i] = x - y;
                }
            }
            h *= 2;
        }
        let norm = 1.0 / diag.len() as f64;
        let terms: Vec<(PauliString, f64)> = a
            .into_iter()
            .enumerate()
            .filter_map(|(m, c)| {
                let coeff = c * norm;
                (coeff.abs() > eps).then_some((
                    PauliString {
                        x_mask: 0,
                        z_mask: m as u64,
                    },
                    coeff,
                ))
            })
            .collect();
        SparsePauliOp::from_terms(n, terms)
    }

    /// ⟨ψ|H|ψ⟩, term by term (works for non-diagonal operators too).
    pub fn expectation(&self, sv: &Statevector) -> f64 {
        assert!(
            self.num_qubits <= sv.num_qubits(),
            "operator wider than state"
        );
        self.terms
            .iter()
            .map(|&(p, c)| c * expectation_term(sv, p))
            .sum()
    }

    /// Evaluates the diagonal energy of a single basis state without
    /// expanding the full diagonal (used by shot post-processing on wide
    /// registers).
    ///
    /// # Panics
    /// Panics if the operator has off-diagonal terms.
    pub fn energy_of_bitstring(&self, bits: u64) -> f64 {
        assert!(self.is_diagonal(), "operator has off-diagonal terms");
        self.terms
            .iter()
            .map(|&(p, c)| {
                if (bits & p.z_mask).count_ones() & 1 == 0 {
                    c
                } else {
                    -c
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    const EPS: f64 = 1e-10;

    #[test]
    fn label_round_trip() {
        for label in ["IXYZ", "ZZII", "YYYY", "IIII", "XIZI"] {
            let p = PauliString::from_label(label);
            assert_eq!(p.to_label(4), label);
        }
    }

    #[test]
    fn weight_and_diagonality() {
        assert_eq!(PauliString::from_label("IXYZ").weight(), 3);
        assert!(PauliString::from_label("ZIZ").is_diagonal());
        assert!(!PauliString::from_label("XII").is_diagonal());
        assert_eq!(PauliString::from_label("YIY").y_count(), 2);
    }

    #[test]
    fn single_qubit_expectations() {
        // |0⟩: ⟨Z⟩=1, ⟨X⟩=0, ⟨Y⟩=0
        let sv = Statevector::zero(1);
        assert!((PauliString::z(0).expectation(&sv) - 1.0).abs() < EPS);
        assert!(PauliString::x(0).expectation(&sv).abs() < EPS);
        assert!(PauliString::y(0).expectation(&sv).abs() < EPS);

        // |+⟩: ⟨X⟩=1
        let mut plus = Statevector::zero(1);
        plus.apply_single(crate::gate::GateKind::H, 0, 0.0);
        assert!((PauliString::x(0).expectation(&plus) - 1.0).abs() < EPS);
        assert!(PauliString::z(0).expectation(&plus).abs() < EPS);
    }

    #[test]
    fn y_expectation_on_ry_state() {
        // Ry(θ)|0⟩ has ⟨Y⟩ = 0, ⟨Z⟩ = cosθ, ⟨X⟩ = sinθ
        let theta = 0.6;
        let mut sv = Statevector::zero(1);
        sv.apply_single(crate::gate::GateKind::Ry, 0, theta);
        assert!((PauliString::z(0).expectation(&sv) - theta.cos()).abs() < EPS);
        assert!((PauliString::x(0).expectation(&sv) - theta.sin()).abs() < EPS);
        assert!(PauliString::y(0).expectation(&sv).abs() < EPS);
    }

    #[test]
    fn zz_on_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = Statevector::zero(2);
        sv.apply_circuit(&c);
        assert!((PauliString::zz(0, 1).expectation(&sv) - 1.0).abs() < EPS);
        assert!((PauliString::from_label("XX").expectation(&sv) - 1.0).abs() < EPS);
        assert!((PauliString::from_label("YY").expectation(&sv) + 1.0).abs() < EPS);
    }

    #[test]
    fn multiplication_phases() {
        let x = PauliString::x(0);
        let y = PauliString::y(0);
        let z = PauliString::z(0);
        // XY = iZ
        let (ph, p) = x.mul(y);
        assert_eq!(p, z);
        assert!(ph.approx_eq(C64::I, EPS));
        // YX = -iZ
        let (ph, p) = y.mul(x);
        assert_eq!(p, z);
        assert!(ph.approx_eq(-C64::I, EPS));
        // ZZ = I
        let (ph, p) = z.mul(z);
        assert_eq!(p, PauliString::IDENTITY);
        assert!(ph.approx_eq(C64::ONE, EPS));
        // XZ = -iY
        let (ph, p) = x.mul(z);
        assert_eq!(p, y);
        assert!(ph.approx_eq(-C64::I, EPS));
    }

    #[test]
    fn commutation() {
        let xi = PauliString::from_label("XI");
        let ix = PauliString::from_label("IX");
        let zi = PauliString::from_label("ZI");
        assert!(xi.commutes_with(ix));
        assert!(!xi.commutes_with(zi));
        assert!(PauliString::from_label("XX").commutes_with(PauliString::from_label("ZZ")));
    }

    #[test]
    fn sparse_op_simplify_merges() {
        let mut op = SparsePauliOp::zero(2);
        op.add_term(PauliString::z(0), 1.5);
        op.add_term(PauliString::z(0), 0.5);
        op.add_term(PauliString::z(1), -2.0);
        op.add_term(PauliString::z(1), 2.0);
        op.simplify();
        assert_eq!(op.len(), 1);
        assert_eq!(op.terms()[0], (PauliString::z(0), 2.0));
    }

    #[test]
    fn diagonal_expansion_matches_bitstring_energy() {
        let mut op = SparsePauliOp::zero(3);
        op.add_constant(4.0);
        op.add_term(PauliString::z(0), 1.0);
        op.add_term(PauliString::zz(1, 2), -2.0);
        op.simplify();
        let diag = op.to_diagonal();
        for i in 0..8u64 {
            assert!((diag[i as usize] - op.energy_of_bitstring(i)).abs() < EPS);
        }
        // Spot check: |000⟩ → 4 + 1 - 2 = 3
        assert!((diag[0] - 3.0).abs() < EPS);
        // |001⟩ → 4 - 1 - 2 = 1
        assert!((diag[1] - 1.0).abs() < EPS);
        // |010⟩ → 4 + 1 + 2 = 7
        assert!((diag[2] - 7.0).abs() < EPS);
    }

    #[test]
    fn diagonal_expectation_agrees_with_general_path() {
        let mut op = SparsePauliOp::zero(3);
        op.add_constant(1.0);
        op.add_term(PauliString::z(0), 0.7);
        op.add_term(PauliString::zz(0, 2), -1.3);

        let mut c = Circuit::new(3);
        c.ry(0, 0.4).ry(1, 1.2).ry(2, -0.8).cx(0, 1).cx(1, 2);
        let mut sv = Statevector::zero(3);
        sv.apply_circuit(&c);

        let via_terms = op.expectation(&sv);
        let via_diag = sv.expectation_diagonal(&op.to_diagonal());
        assert!((via_terms - via_diag).abs() < EPS);
    }

    #[test]
    fn from_diagonal_round_trips() {
        let diag = vec![3.0, -1.5, 0.25, 7.0, 2.0, 2.0, -4.0, 0.0];
        let op = SparsePauliOp::from_diagonal(&diag, 1e-12);
        assert!(op.is_diagonal());
        let back = op.to_diagonal();
        for (a, b) in diag.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn from_diagonal_of_single_z() {
        // diag = [1, -1] is exactly Z.
        let op = SparsePauliOp::from_diagonal(&[1.0, -1.0], 1e-12);
        assert_eq!(op.terms(), &[(PauliString::z(0), 1.0)]);
        // Constant diagonal is the identity term.
        let c = SparsePauliOp::from_diagonal(&[2.5, 2.5, 2.5, 2.5], 1e-12);
        assert_eq!(c.terms(), &[(PauliString::IDENTITY, 2.5)]);
    }

    #[test]
    fn hermitian_expectation_is_real_for_mixed_terms() {
        let mut op = SparsePauliOp::zero(2);
        op.add_term(PauliString::from_label("XY"), 0.9);
        op.add_term(PauliString::from_label("YX"), 0.9);
        op.add_term(PauliString::from_label("ZI"), -0.4);

        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1, 0.3).ry(0, 1.1);
        let mut sv = Statevector::zero(2);
        sv.apply_circuit(&c);
        let e = op.expectation(&sv);
        assert!(e.is_finite());
        assert!(e.abs() <= 2.2 + EPS, "bounded by sum of |coeffs|");
    }
}
