//! Circuit compilation: gate fusion, diagonal coalescing, and permutation
//! composition.
//!
//! The VQE hot loop evaluates the same ansatz under hundreds of parameter
//! bindings. Applied gate-by-gate, every instruction is a separate O(2ⁿ)
//! sweep over the statevector, and at 22 qubits each sweep streams ~67 MB
//! through memory — the simulator is bandwidth-bound, so the pass count *is*
//! the cost model. [`CompiledCircuit`] rewrites the instruction list once
//! into a short plan of fat passes:
//!
//! * **Single-qubit fusion** — maximal runs of adjacent single-qubit gates
//!   on the same qubit collapse into one dense 2×2 unitary. Parametric
//!   gates stay symbolic in the plan; each parameter binding re-multiplies
//!   the affected 2×2 products (O(gates) scalar work, no statevector
//!   traffic).
//! * **Diagonal coalescing** — consecutive runs of diagonal gates (`Rz`,
//!   `P`, `Z`, `S`, `T`, `Cz`, `Rzz`, …) merge into a single phase pass:
//!   one sweep multiplies every amplitude by the product of per-qubit and
//!   per-pair phases instead of N separate sweeps.
//! * **Permutation composition** — runs of basis-permutation gates (`Cx`,
//!   `Swap`) compose into one bit-linear map over F₂; a full linear
//!   entanglement layer of n−1 CNOTs becomes a single gather pass through
//!   a reusable scratch buffer.
//!
//! * **Pair merging** — a final peephole joins adjacent fused single-qubit
//!   passes on distinct qubits into one dense 4×4 sweep (their Kronecker
//!   product): same arithmetic, half the memory traffic per rotation layer.
//! * **Product-state initialization** — when the plan opens with a rotation
//!   layer (independent single-qubit unitaries, each qubit at most once),
//!   executing from `|0…0⟩` reduces that whole layer to a product of first
//!   columns: [`crate::exec::SimWorkspace::run`] replaces the reset *and*
//!   the leading passes with a single recursive-doubling fill.
//!
//! Only genuinely dense two-qubit unitaries (`Ecr`) remain as individual
//! passes, executed in place with no allocation. For `EfficientSU2(n,
//! reps=2)` the plan shrinks from `8n−2` sweeps to `3·⌈n/2⌉+2`.
//!
//! Compilation itself is exact: the plan applies the same unitary as the
//! original instruction list. Fused matrix products round differently at
//! the last ulp than sequential application, so energies agree to ~1e-13
//! but are not bit-identical with the direct path (see DESIGN.md
//! §"Execution engine").
//!
//! Trajectory noise inserts stochastic Paulis *between* gates, so every
//! noise insertion point is a fusion barrier; the noisy path therefore
//! executes gate-by-gate (see [`crate::noise`]) and fusion serves the
//! noiseless majority of evaluations.

use crate::circuit::Circuit;
use crate::complex::C64;
use crate::gate::{
    diagonal_phases, mat2_identity, mat2_mul, single_qubit_matrix, two_qubit_matrix, Angle,
    GateKind, Mat2, Mat4,
};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source for [`CompiledCircuit::plan_id`] — lets a
/// [`crate::exec::SimWorkspace`] detect that its bound tables belong to a
/// different plan and re-prepare them.
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

/// A gate reference kept by the plan for per-binding re-specialization.
#[derive(Clone, Copy, Debug)]
pub(crate) struct GateRef {
    pub kind: GateKind,
    pub angle: Option<Angle>,
}

impl GateRef {
    fn resolve(self, params: &[f64]) -> f64 {
        self.angle.map(|a| a.resolve(params)).unwrap_or(0.0)
    }

    fn is_parametric(self) -> bool {
        matches!(self.angle, Some(a) if a.is_parametric())
    }
}

/// One pass of the compiled execution plan.
#[derive(Clone, Debug)]
pub(crate) enum PlanOp {
    /// Dense fused single-qubit unitary; matrix in `BoundTables::mats[slot]`.
    Fused1 { q: u32, slot: u32 },
    /// Coalesced diagonal phase pass; phases in the bound tables at `slot`.
    Diag { slot: u32 },
    /// Composed bit-linear basis permutation (`perms[slot]`).
    Perm { slot: u32 },
    /// A lone CNOT (cheaper in place than a one-gate permutation pass).
    Cx { control: u32, target: u32 },
    /// A lone SWAP.
    Swap { a: u32, b: u32 },
    /// Dense two-qubit unitary; matrix in `BoundTables::mats4[slot]`.
    Dense2 { q0: u32, q1: u32, slot: u32 },
}

/// A fused run of single-qubit gates on one qubit.
#[derive(Clone, Debug)]
pub(crate) struct FusedSpec {
    /// Target qubit (redundant with the plan op; kept for diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub q: u32,
    /// Range into `CompiledCircuit::run_gates`, program order.
    pub gates: Range<usize>,
    pub parametric: bool,
}

/// Per-qubit contribution to a diagonal pass.
#[derive(Clone, Debug)]
pub(crate) struct DiagSingleSpec {
    pub mask: usize,
    /// Range into `CompiledCircuit::diag_gates`.
    pub gates: Range<usize>,
}

/// Per-qubit-pair contribution (`Cz`, `Rzz`) to a diagonal pass.
#[derive(Clone, Debug)]
pub(crate) struct DiagPairSpec {
    pub mask0: usize,
    pub mask1: usize,
    /// Range into `CompiledCircuit::diag_gates`.
    pub gates: Range<usize>,
}

/// A coalesced diagonal pass: one sweep applying all accumulated phases.
#[derive(Clone, Debug)]
pub(crate) struct DiagSpec {
    pub singles: Vec<DiagSingleSpec>,
    pub pairs: Vec<DiagPairSpec>,
    /// Offsets into the flattened bound-table phase arrays.
    pub single_off: usize,
    pub pair_off: usize,
    pub parametric: bool,
}

/// A composed run of basis-permutation gates as a bit-linear inverse map:
/// output amplitude `j` gathers from input index `G(j)` where bit `t` of
/// `G(j)` is `parity(j & masks[t])`.
#[derive(Clone, Debug)]
pub(crate) struct PermSpec {
    pub masks: Vec<usize>,
    /// Number of source gates composed into this pass (diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub gate_count: usize,
}

/// Where a dense two-qubit pass takes its 4×4 matrix from.
#[derive(Clone, Debug)]
pub(crate) enum Dense2Source {
    /// A genuinely dense two-qubit gate (`Ecr`).
    Gate(GateRef),
    /// Two fused single-qubit runs merged into one sweep: the 4×4 is
    /// `mats[run1] ⊗ mats[run0]`, with `run0` acting on the pass's `q0`.
    Kron { run0: u32, run1: u32 },
}

/// A dense two-qubit pass.
#[derive(Clone, Debug)]
pub(crate) struct Dense2Spec {
    pub source: Dense2Source,
    pub parametric: bool,
}

/// Per-binding matrices and phases for a [`CompiledCircuit`], kept in a
/// reusable buffer so re-specialization performs zero heap allocations.
///
/// A `BoundTables` belongs to the plan it was last [`prepared`] for
/// ([`CompiledCircuit::plan_id`]); [`crate::exec::SimWorkspace`] re-prepares
/// automatically when the plan changes.
///
/// [`prepared`]: BoundTables::prepare
#[derive(Clone, Debug, Default)]
pub struct BoundTables {
    /// One fused 2×2 per `FusedSpec`.
    pub(crate) mats: Vec<Mat2>,
    /// One 4×4 per `Dense2Spec`.
    pub(crate) mats4: Vec<Mat4>,
    /// Flattened `(mask, lo, hi)` per-qubit phases across all diag passes.
    pub(crate) diag_singles: Vec<(usize, C64, C64)>,
    /// Flattened `(mask0, mask1, table)` pair phases across all diag passes.
    pub(crate) diag_pairs: Vec<(usize, usize, [C64; 4])>,
    /// Which plan these tables were prepared for (0 = none).
    plan_id: u64,
}

impl BoundTables {
    /// Fresh, unprepared tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the tables are currently sized and constant-filled for `cc`.
    pub fn prepared_for(&self, cc: &CompiledCircuit) -> bool {
        self.plan_id == cc.plan_id
    }

    /// Sizes the tables for `cc` and fills every non-parametric entry.
    /// Called once per (workspace, plan) pair; later bindings only rewrite
    /// parametric entries via [`CompiledCircuit::specialize`].
    pub fn prepare(&mut self, cc: &CompiledCircuit) {
        self.mats.clear();
        self.mats.resize(cc.runs.len(), mat2_identity());
        self.mats4.clear();
        self.mats4.resize(cc.dense2.len(), [[C64::ZERO; 4]; 4]);
        self.diag_singles.clear();
        self.diag_singles
            .resize(cc.diag_single_count, (0, C64::ONE, C64::ONE));
        self.diag_pairs.clear();
        self.diag_pairs
            .resize(cc.diag_pair_count, (0, 0, [C64::ONE; 4]));
        // Masks are binding-independent; fill them once here.
        for spec in &cc.diags {
            for (i, s) in spec.singles.iter().enumerate() {
                self.diag_singles[spec.single_off + i].0 = s.mask;
            }
            for (i, p) in spec.pairs.iter().enumerate() {
                let entry = &mut self.diag_pairs[spec.pair_off + i];
                entry.0 = p.mask0;
                entry.1 = p.mask1;
            }
        }
        self.plan_id = cc.plan_id;
        // Constants resolve against the empty parameter vector.
        cc.fill_tables(&[], self, true);
    }
}

/// A circuit lowered to a fused execution plan. Build once per ansatz with
/// [`CompiledCircuit::compile`], then evaluate many parameter bindings
/// through [`crate::exec::SimWorkspace::run`].
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    num_qubits: usize,
    num_params: usize,
    source_gates: usize,
    plan_id: u64,
    pub(crate) ops: Vec<PlanOp>,
    pub(crate) runs: Vec<FusedSpec>,
    pub(crate) run_gates: Vec<GateRef>,
    pub(crate) diags: Vec<DiagSpec>,
    pub(crate) diag_gates: Vec<GateRef>,
    pub(crate) perms: Vec<PermSpec>,
    pub(crate) dense2: Vec<Dense2Spec>,
    /// Leading ops coverable by a product-state fill when executing from
    /// `|0…0⟩`: `(qubit, run slot)` pairs, one per qubit touched by the
    /// prefix. Empty when the plan does not start with a rotation layer.
    pub(crate) init_cols: Vec<(u32, u32)>,
    /// How many leading `ops` the product fill replaces.
    pub(crate) init_ops: usize,
    diag_single_count: usize,
    diag_pair_count: usize,
}

impl CompiledCircuit {
    /// Compiles `circuit` into a fused execution plan.
    pub fn compile(circuit: &Circuit) -> Self {
        Compiler::new(circuit).run()
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of free parameters of the source circuit.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Number of statevector passes the plan executes.
    pub fn num_passes(&self) -> usize {
        self.ops.len()
    }

    /// Number of gates in the source circuit (excluding `Id`).
    pub fn source_gate_count(&self) -> usize {
        self.source_gates
    }

    /// Unique identity of this plan (for bound-table cache validation).
    pub fn plan_id(&self) -> u64 {
        self.plan_id
    }

    /// Re-specializes `tables` for a parameter binding, rewriting only the
    /// parametric entries. Zero allocations.
    ///
    /// # Panics
    /// Panics if `params` has the wrong length or `tables` was prepared
    /// for a different plan.
    pub fn specialize(&self, params: &[f64], tables: &mut BoundTables) {
        assert_eq!(params.len(), self.num_params, "parameter count mismatch");
        assert!(
            tables.prepared_for(self),
            "tables prepared for a different plan"
        );
        self.fill_tables(params, tables, false);
    }

    /// Writes fused matrices and diagonal phases into `tables`.
    /// `constants` selects whether the non-parametric (`true`) or the
    /// parametric (`false`) entries are recomputed.
    fn fill_tables(&self, params: &[f64], tables: &mut BoundTables, constants: bool) {
        for (slot, run) in self.runs.iter().enumerate() {
            if run.parametric == constants {
                continue;
            }
            let mut m = mat2_identity();
            for g in &self.run_gates[run.gates.clone()] {
                m = mat2_mul(&single_qubit_matrix(g.kind, g.resolve(params)), &m);
            }
            tables.mats[slot] = m;
        }
        // Runs first, dense2 second: a Kron pass reads the fused 2×2s
        // written above (constant runs at prepare, parametric at
        // specialize — both are current by the time the product is taken).
        for (slot, spec) in self.dense2.iter().enumerate() {
            if spec.parametric == constants {
                continue;
            }
            tables.mats4[slot] = match spec.source {
                Dense2Source::Gate(g) => two_qubit_matrix(g.kind, g.resolve(params)),
                Dense2Source::Kron { run0, run1 } => {
                    kron_mat2(&tables.mats[run1 as usize], &tables.mats[run0 as usize])
                }
            };
        }
        for spec in &self.diags {
            if spec.parametric == constants {
                continue;
            }
            for (i, s) in spec.singles.iter().enumerate() {
                let (mut lo, mut hi) = (C64::ONE, C64::ONE);
                for g in &self.diag_gates[s.gates.clone()] {
                    let (d0, d1) = diagonal_phases(g.kind, g.resolve(params))
                        .expect("diag pass holds only diagonal 1q gates");
                    lo = lo * d0;
                    hi = hi * d1;
                }
                let entry = &mut tables.diag_singles[spec.single_off + i];
                entry.1 = lo;
                entry.2 = hi;
            }
            for (i, p) in spec.pairs.iter().enumerate() {
                let mut table = [C64::ONE; 4];
                for g in &self.diag_gates[p.gates.clone()] {
                    match g.kind {
                        GateKind::Cz => table[3] = table[3] * -C64::ONE,
                        GateKind::Rzz => {
                            let theta = g.resolve(params);
                            let even = C64::cis(-theta / 2.0);
                            let odd = C64::cis(theta / 2.0);
                            table[0] = table[0] * even;
                            table[1] = table[1] * odd;
                            table[2] = table[2] * odd;
                            table[3] = table[3] * even;
                        }
                        other => panic!("{other:?} is not a diagonal pair gate"),
                    }
                }
                tables.diag_pairs[spec.pair_off + i].2 = table;
            }
        }
    }
}

impl DiagSpec {
    fn any_parametric(gates: &[GateRef]) -> bool {
        gates.iter().any(|g| g.is_parametric())
    }
}

/// `hi ⊗ lo` in the `|q1 q0⟩` basis of [`two_qubit_matrix`]: row/column
/// index `(b1 << 1) | b0` with `lo` acting on `q0` and `hi` on `q1`.
fn kron_mat2(hi: &Mat2, lo: &Mat2) -> Mat4 {
    let mut m = [[C64::ZERO; 4]; 4];
    for r1 in 0..2 {
        for r0 in 0..2 {
            for c1 in 0..2 {
                for c0 in 0..2 {
                    m[(r1 << 1) | r0][(c1 << 1) | c0] = hi[r1][c1] * lo[r0][c0];
                }
            }
        }
    }
    m
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Scan state: what kind of coalescible construct is currently open at the
/// tail of the op stream.
enum Open {
    None,
    /// A permutation run: `ops[start..]` conceptually; the composed map and
    /// touched-qubit mask accumulate here until the run closes.
    Perm {
        start: usize,
        masks: Vec<usize>,
        touched: usize,
        gate_count: usize,
    },
    /// A diagonal pass under construction (not yet in the op stream).
    Diag {
        singles: Vec<(u32, Range<usize>)>,
        pairs: Vec<(u32, u32, Range<usize>)>,
    },
}

struct Compiler<'c> {
    circuit: &'c Circuit,
    ops: Vec<PlanOp>,
    runs: Vec<FusedSpec>,
    run_gates: Vec<GateRef>,
    diags: Vec<DiagSpec>,
    diag_gates: Vec<GateRef>,
    perms: Vec<PermSpec>,
    dense2: Vec<Dense2Spec>,
    /// Per-qubit pending run of single-qubit gates. Buffered per qubit
    /// (runs on different qubits interleave in program order) and copied
    /// into `run_gates` contiguously when the run flushes.
    pending: Vec<Vec<GateRef>>,
    open: Open,
    source_gates: usize,
    diag_single_count: usize,
    diag_pair_count: usize,
}

impl<'c> Compiler<'c> {
    fn new(circuit: &'c Circuit) -> Self {
        Self {
            circuit,
            ops: Vec::new(),
            runs: Vec::new(),
            run_gates: Vec::new(),
            diags: Vec::new(),
            diag_gates: Vec::new(),
            perms: Vec::new(),
            dense2: Vec::new(),
            pending: vec![Vec::new(); circuit.num_qubits()],
            open: Open::None,
            source_gates: 0,
            diag_single_count: 0,
            diag_pair_count: 0,
        }
    }

    fn run(mut self) -> CompiledCircuit {
        for instr in self.circuit.instructions() {
            if instr.kind == GateKind::Id {
                continue;
            }
            self.source_gates += 1;
            let gate = GateRef {
                kind: instr.kind,
                angle: instr.angle,
            };
            match instr.kind.arity() {
                1 => self.on_single(instr.q0, gate),
                _ => self.on_double(instr.q0, instr.q1, gate),
            }
        }
        for q in 0..self.pending.len() {
            self.flush_pending(q as u32);
        }
        self.close_open();
        self.merge_fused_pairs();
        let (init_cols, init_ops) = self.detect_init_prefix();
        CompiledCircuit {
            num_qubits: self.circuit.num_qubits(),
            num_params: self.circuit.num_params(),
            source_gates: self.source_gates,
            plan_id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
            ops: self.ops,
            runs: self.runs,
            run_gates: self.run_gates,
            diags: self.diags,
            diag_gates: self.diag_gates,
            perms: self.perms,
            dense2: self.dense2,
            init_cols,
            init_ops,
            diag_single_count: self.diag_single_count,
            diag_pair_count: self.diag_pair_count,
        }
    }

    /// Finds the longest leading stretch of ops that applies independent
    /// single-qubit unitaries — fused passes or pair-merged Kronecker
    /// sweeps, each qubit at most once. Started from `|0…0⟩`, that entire
    /// stretch equals a product state of the runs' first columns, so
    /// [`crate::exec::SimWorkspace::run`] replaces it (and the reset) with
    /// one [`fill_product`] sweep. The ops stay in the plan: applying the
    /// circuit to an arbitrary state still executes them normally.
    ///
    /// [`fill_product`]: crate::statevector::Statevector::fill_product
    fn detect_init_prefix(&self) -> (Vec<(u32, u32)>, usize) {
        let mut seen = 0usize;
        let mut cols = Vec::new();
        let mut len = 0;
        for op in &self.ops {
            match *op {
                PlanOp::Fused1 { q, slot } if seen & (1usize << q) == 0 => {
                    seen |= 1usize << q;
                    cols.push((q, slot));
                }
                PlanOp::Dense2 { q0, q1, slot }
                    if seen & ((1usize << q0) | (1usize << q1)) == 0 =>
                {
                    let Dense2Source::Kron { run0, run1 } = self.dense2[slot as usize].source
                    else {
                        break;
                    };
                    seen |= (1usize << q0) | (1usize << q1);
                    cols.push((q0, run0));
                    cols.push((q1, run1));
                }
                _ => break,
            }
            len += 1;
        }
        (cols, len)
    }

    fn on_single(&mut self, q: u32, gate: GateRef) {
        if !self.pending[q as usize].is_empty() {
            // Extend the open run on this qubit; diagonal gates fold into
            // the dense 2×2 product like any other single-qubit gate.
            self.pending[q as usize].push(gate);
            return;
        }
        if gate.kind.is_diagonal() {
            // No dense run to join: contribute to a diagonal pass instead
            // (a phase multiply is cheaper than a dense 2×2 sweep).
            self.add_diag_single(q, gate);
            return;
        }
        self.pending[q as usize].push(gate);
    }

    fn on_double(&mut self, q0: u32, q1: u32, gate: GateRef) {
        self.flush_pending(q0);
        self.flush_pending(q1);
        if gate.kind.is_diagonal() {
            self.add_diag_pair(q0, q1, gate);
        } else if gate.kind.is_permutation() {
            self.add_perm(q0, q1, gate.kind);
        } else {
            self.close_open();
            let slot = self.dense2.len() as u32;
            self.dense2.push(Dense2Spec {
                source: Dense2Source::Gate(gate),
                parametric: gate.is_parametric(),
            });
            self.ops.push(PlanOp::Dense2 { q0, q1, slot });
        }
    }

    /// Emits the pending single-qubit run on `q` (if any) as a fused op.
    /// When a permutation run is open and does not touch `q`, the fused op
    /// commutes with the whole run and is hoisted in front of it, keeping
    /// the permutation run alive across interleaved rotation flushes.
    fn flush_pending(&mut self, q: u32) {
        if self.pending[q as usize].is_empty() {
            return;
        }
        let start = self.run_gates.len();
        self.run_gates.extend(self.pending[q as usize].drain(..));
        let gates = start..self.run_gates.len();
        let parametric = self.run_gates[gates.clone()]
            .iter()
            .any(|g| g.is_parametric());
        let slot = self.runs.len() as u32;
        self.runs.push(FusedSpec {
            q,
            gates,
            parametric,
        });
        let op = PlanOp::Fused1 { q, slot };
        match &mut self.open {
            Open::Perm { start, touched, .. } if *touched & (1usize << q) == 0 => {
                let at = *start;
                self.ops.insert(at, op);
                *start += 1;
            }
            Open::Perm { .. } => {
                self.close_open();
                self.ops.push(op);
            }
            Open::Diag { .. } => {
                self.close_open();
                self.ops.push(op);
            }
            Open::None => self.ops.push(op),
        }
    }

    fn add_diag_single(&mut self, q: u32, gate: GateRef) {
        self.ensure_diag_open();
        let idx = self.diag_gates.len();
        self.diag_gates.push(gate);
        let Open::Diag { singles, .. } = &mut self.open else {
            unreachable!("ensure_diag_open leaves a diag pass open");
        };
        // Gate ranges must stay contiguous in `diag_gates`, so a repeat
        // contribution to a qubit extends its entry only when that entry is
        // tail-adjacent; otherwise a second entry for the same qubit is
        // opened (correct — the executed phase is the product over entries).
        match singles.iter_mut().rev().find(|(sq, _)| *sq == q) {
            Some((_, range)) if range.end == idx => range.end = idx + 1,
            _ => singles.push((q, idx..idx + 1)),
        }
    }

    fn add_diag_pair(&mut self, q0: u32, q1: u32, gate: GateRef) {
        self.ensure_diag_open();
        let idx = self.diag_gates.len();
        self.diag_gates.push(gate);
        let (a, b) = if q0 <= q1 { (q0, q1) } else { (q1, q0) };
        // Cz is symmetric; Rzz depends only on parity — both are invariant
        // under operand order, so pairs are keyed on the sorted qubits.
        let Open::Diag { pairs, .. } = &mut self.open else {
            unreachable!("ensure_diag_open leaves a diag pass open");
        };
        match pairs
            .iter_mut()
            .rev()
            .find(|(pa, pb, _)| *pa == a && *pb == b)
        {
            Some((_, _, range)) if range.end == idx => range.end = idx + 1,
            _ => pairs.push((a, b, idx..idx + 1)),
        }
    }

    fn add_perm(&mut self, q0: u32, q1: u32, kind: GateKind) {
        let n = self.circuit.num_qubits();
        if !matches!(self.open, Open::Perm { .. }) {
            self.close_open();
            self.open = Open::Perm {
                start: self.ops.len(),
                masks: (0..n).map(|t| 1usize << t).collect(),
                touched: 0,
                gate_count: 0,
            };
        }
        let Open::Perm {
            masks,
            touched,
            gate_count,
            ..
        } = &mut self.open
        else {
            unreachable!("perm run opened above");
        };
        *touched |= (1usize << q0) | (1usize << q1);
        *gate_count += 1;
        // Compose the gate's inverse on the right of the gather map G:
        // G_new(j) = G_old(g(j)).
        match kind {
            GateKind::Cx => {
                // g: bit t ^= bit c  (self-inverse).
                let (c, t) = (q0 as usize, q1 as usize);
                for mask in masks.iter_mut() {
                    if *mask & (1 << t) != 0 {
                        *mask ^= 1 << c;
                    }
                }
            }
            GateKind::Swap => {
                let (a, b) = (q0 as usize, q1 as usize);
                for mask in masks.iter_mut() {
                    let ba = (*mask >> a) & 1;
                    let bb = (*mask >> b) & 1;
                    if ba != bb {
                        *mask ^= (1 << a) | (1 << b);
                    }
                }
            }
            other => panic!("{other:?} is not a permutation gate"),
        }
    }

    fn ensure_diag_open(&mut self) {
        if !matches!(self.open, Open::Diag { .. }) {
            self.close_open();
            self.open = Open::Diag {
                singles: Vec::new(),
                pairs: Vec::new(),
            };
        }
    }

    /// Closes whatever construct is open, emitting its plan op.
    fn close_open(&mut self) {
        match std::mem::replace(&mut self.open, Open::None) {
            Open::None => {}
            Open::Perm {
                masks, gate_count, ..
            } => {
                if gate_count == 1 {
                    // A lone permutation gate is cheaper in place; recover
                    // it from the composed map rather than one gather pass.
                    self.emit_single_perm(&masks);
                } else {
                    let slot = self.perms.len() as u32;
                    self.perms.push(PermSpec { masks, gate_count });
                    self.ops.push(PlanOp::Perm { slot });
                }
            }
            Open::Diag { singles, pairs } => {
                let single_off = self.diag_single_count;
                let pair_off = self.diag_pair_count;
                let spec_singles: Vec<DiagSingleSpec> = singles
                    .into_iter()
                    .map(|(q, gates)| DiagSingleSpec {
                        mask: 1usize << q,
                        gates,
                    })
                    .collect();
                let spec_pairs: Vec<DiagPairSpec> = pairs
                    .into_iter()
                    .map(|(a, b, gates)| DiagPairSpec {
                        mask0: 1usize << a,
                        mask1: 1usize << b,
                        gates,
                    })
                    .collect();
                self.diag_single_count += spec_singles.len();
                self.diag_pair_count += spec_pairs.len();
                let parametric = spec_singles
                    .iter()
                    .map(|s| &self.diag_gates[s.gates.clone()])
                    .chain(spec_pairs.iter().map(|p| &self.diag_gates[p.gates.clone()]))
                    .any(DiagSpec::any_parametric);
                let slot = self.diags.len() as u32;
                self.diags.push(DiagSpec {
                    singles: spec_singles,
                    pairs: spec_pairs,
                    single_off,
                    pair_off,
                    parametric,
                });
                self.ops.push(PlanOp::Diag { slot });
            }
        }
    }

    /// Final peephole: adjacent fused single-qubit passes on distinct
    /// qubits merge into one dense 4×4 sweep (their Kronecker product).
    /// The flop count is unchanged but the statevector is streamed once
    /// instead of twice, which halves the memory traffic of every rotation
    /// layer — the dominant pass kind in a hardware-efficient ansatz.
    fn merge_fused_pairs(&mut self) {
        let mut merged = Vec::with_capacity(self.ops.len());
        let mut i = 0;
        while i < self.ops.len() {
            let pair = match (self.ops.get(i), self.ops.get(i + 1)) {
                (
                    Some(&PlanOp::Fused1 { q: qa, slot: sa }),
                    Some(&PlanOp::Fused1 { q: qb, slot: sb }),
                ) if qa != qb => Some((qa, sa, qb, sb)),
                _ => None,
            };
            if let Some((qa, sa, qb, sb)) = pair {
                let parametric =
                    self.runs[sa as usize].parametric || self.runs[sb as usize].parametric;
                let slot = self.dense2.len() as u32;
                self.dense2.push(Dense2Spec {
                    source: Dense2Source::Kron { run0: sa, run1: sb },
                    parametric,
                });
                merged.push(PlanOp::Dense2 {
                    q0: qa,
                    q1: qb,
                    slot,
                });
                i += 2;
            } else {
                merged.push(self.ops[i].clone());
                i += 1;
            }
        }
        self.ops = merged;
    }

    /// Decomposes a single-gate permutation map back into its plan op.
    fn emit_single_perm(&mut self, masks: &[usize]) {
        // Exactly one of: CX (one row gained one extra bit) or SWAP (two
        // rows exchanged).
        let mut changed: Vec<usize> = masks
            .iter()
            .enumerate()
            .filter(|&(t, &m)| m != 1usize << t)
            .map(|(t, _)| t)
            .collect();
        match changed.len() {
            1 => {
                let t = changed.pop().expect("one changed row");
                let c = (masks[t] ^ (1usize << t)).trailing_zeros();
                self.ops.push(PlanOp::Cx {
                    control: c,
                    target: t as u32,
                });
            }
            2 => {
                let (a, b) = (changed[0] as u32, changed[1] as u32);
                self.ops.push(PlanOp::Swap { a, b });
            }
            _ => unreachable!("single permutation gate touches at most two rows"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{efficient_su2, Entanglement};
    use crate::gate::Angle;

    #[test]
    fn efficient_su2_plan_shape() {
        // reps=2 linear: 3 rotation layers fuse to n single-qubit passes
        // each, then pair-merge to ⌈n/2⌉ dense sweeps; the two entanglement
        // layers compose to one permutation pass each.
        for n in [2usize, 4, 5, 8] {
            let c = efficient_su2(n, 2, Entanglement::Linear);
            let cc = CompiledCircuit::compile(&c);
            let expected_perm = if n > 2 { 2 } else { 0 }; // n=2: lone CX stays a Cx op
            let expected = 3 * n.div_ceil(2) + 2;
            assert_eq!(cc.num_passes(), expected, "n={n}");
            assert_eq!(cc.perms.len(), expected_perm, "n={n}");
            assert_eq!(cc.runs.len(), 3 * n, "n={n}");
            assert_eq!(cc.dense2.len(), 3 * (n / 2), "n={n}");
            assert!(cc.diags.is_empty());
        }
    }

    #[test]
    fn adjacent_fused_passes_merge_into_dense_pairs() {
        // Three H's flush as three fused passes; the first two merge into
        // one Kronecker sweep, the odd one out stays single-qubit.
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.num_passes(), 2);
        assert_eq!(cc.dense2.len(), 1);
        assert!(matches!(cc.ops[0], PlanOp::Dense2 { q0: 0, q1: 1, .. }));
        assert!(matches!(cc.ops[1], PlanOp::Fused1 { q: 2, .. }));
    }

    #[test]
    fn init_prefix_covers_leading_rotation_layer() {
        // EfficientSU2's first rotation layer (pair-merged) is absorbed
        // into the product fill; a mid-circuit layer is not.
        for n in [4usize, 5, 8] {
            let c = efficient_su2(n, 2, Entanglement::Linear);
            let cc = CompiledCircuit::compile(&c);
            assert_eq!(cc.init_ops, n.div_ceil(2), "n={n}");
            assert_eq!(cc.init_cols.len(), n, "n={n}");
            let mut qubits: Vec<u32> = cc.init_cols.iter().map(|&(q, _)| q).collect();
            qubits.sort_unstable();
            assert_eq!(qubits, (0..n as u32).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn init_prefix_stops_at_repeated_qubit_or_entangler() {
        // A circuit opening with an entangler has no coverable prefix.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.h(2);
        let cc = CompiledCircuit::compile(&c);
        // h(2) commutes over the perm run and is hoisted in front of it,
        // so exactly that one pass is coverable.
        assert_eq!(cc.init_ops, 1);
        assert_eq!(cc.init_cols, vec![(2, 0)]);

        let mut d = Circuit::new(2);
        d.ecr(0, 1);
        let cd = CompiledCircuit::compile(&d);
        assert_eq!(cd.init_ops, 0);
        assert!(cd.init_cols.is_empty());
    }

    #[test]
    fn diagonal_chain_coalesces_to_one_pass() {
        let mut c = Circuit::new(3);
        c.rz(0, 0.3);
        c.push1(GateKind::S, 1, None);
        c.cz(0, 1);
        c.push2(GateKind::Rzz, 1, 2, Some(Angle::Fixed(0.7)));
        c.push1(GateKind::T, 2, None);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.num_passes(), 1);
        assert_eq!(cc.diags.len(), 1);
        assert_eq!(cc.diags[0].singles.len(), 3);
        assert_eq!(cc.diags[0].pairs.len(), 2);
    }

    #[test]
    fn cx_chain_composes_to_one_permutation() {
        let mut c = Circuit::new(6);
        for q in 0..5u32 {
            c.cx(q, q + 1);
        }
        c.swap(0, 5);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.num_passes(), 1);
        assert_eq!(cc.perms.len(), 1);
        assert_eq!(cc.perms[0].gate_count, 6);
    }

    #[test]
    fn lone_cx_and_swap_stay_in_place() {
        // h(1) sits on a qubit the first run touched, so its flush closes
        // the run; each permutation run then holds one gate and lowers to
        // a plain in-place op.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.h(1);
        c.swap(1, 2);
        let cc = CompiledCircuit::compile(&c);
        assert!(cc.perms.is_empty());
        assert_eq!(cc.num_passes(), 3);
        assert!(cc.ops.iter().any(|op| matches!(
            op,
            PlanOp::Cx {
                control: 0,
                target: 1
            }
        )));
        assert!(cc.ops.iter().any(|op| matches!(op, PlanOp::Swap { .. })));
    }

    #[test]
    fn commuting_gate_floats_over_permutation_run() {
        // h(2) commutes with cx(0,1); the run stays open and absorbs the
        // following swap, with the fused h hoisted in front.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.h(2);
        c.swap(1, 2);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.perms.len(), 1);
        assert_eq!(cc.perms[0].gate_count, 2);
        assert_eq!(cc.num_passes(), 2);
        assert!(matches!(cc.ops[0], PlanOp::Fused1 { q: 2, .. }));
    }

    #[test]
    fn rotation_flush_keeps_permutation_run_alive() {
        // ry layer + linear CX chain: flushed rotations on untouched qubits
        // hoist before the open permutation run instead of splitting it,
        // and the hoisted passes pair-merge into two dense sweeps.
        let mut c = Circuit::new(4);
        for q in 0..4u32 {
            c.ry(q, 0.1 * (q + 1) as f64);
        }
        for q in 0..3u32 {
            c.cx(q, q + 1);
        }
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.perms.len(), 1);
        assert_eq!(cc.num_passes(), 2 + 1);
    }

    #[test]
    fn ecr_is_a_dense_pass() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.ecr(0, 1);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.dense2.len(), 1);
        assert_eq!(cc.num_passes(), 2);
    }

    #[test]
    fn parametric_flags_are_tracked() {
        let mut c = Circuit::new(2);
        c.ry_param(0);
        c.rz(0, 0.4);
        c.h(1);
        let cc = CompiledCircuit::compile(&c);
        assert_eq!(cc.runs.len(), 2);
        let by_qubit = |q: u32| cc.runs.iter().find(|r| r.q == q).expect("run");
        assert!(by_qubit(0).parametric);
        assert!(!by_qubit(1).parametric);
    }
}
