//! Reusable execution workspace for compiled circuits.
//!
//! [`SimWorkspace`] owns everything a repeated circuit evaluation needs —
//! the statevector, the permutation scratch buffer, and the per-binding
//! [`BoundTables`] — so the VQE objective can stream hundreds of parameter
//! bindings through [`SimWorkspace::run`] with **zero heap allocations
//! after the first evaluation**: the statevector is [`reset`] in place, the
//! tables are re-specialized into pre-sized storage, and the gather scratch
//! is swapped back and forth with the amplitude buffer.
//!
//! [`reset`]: crate::statevector::Statevector::reset_zero

use crate::compile::{BoundTables, CompiledCircuit, PlanOp};
use crate::complex::C64;
use crate::statevector::Statevector;
use qdb_telemetry::{Counter, Gauge};
use std::sync::Arc;

/// Telemetry handles a workspace fetches once at construction so the hot
/// loop pays only relaxed atomic adds — the zero-allocation contract of
/// [`SimWorkspace::energy`] holds with instrumentation on.
#[derive(Clone, Debug)]
struct ExecMetrics {
    /// `exec.runs`: compiled-circuit executions.
    runs: Arc<Counter>,
    /// `exec.gate_ops`: plan ops applied (fused passes count once).
    gate_ops: Arc<Counter>,
    /// `exec.table_rebinds`: bound-table re-preparations (plan switches).
    table_rebinds: Arc<Counter>,
    /// `exec.workspace_qubits`: current register width.
    workspace_qubits: Arc<Gauge>,
}

impl ExecMetrics {
    fn new() -> Self {
        let t = qdb_telemetry::global();
        Self {
            runs: t.counter("exec.runs"),
            gate_ops: t.counter("exec.gate_ops"),
            table_rebinds: t.counter("exec.table_rebinds"),
            workspace_qubits: t.gauge("exec.workspace_qubits"),
        }
    }
}

/// A reusable simulation workspace: statevector + scratch + bound tables.
///
/// One workspace serves any number of compiled circuits; buffers reallocate
/// only when the register width changes, and the bound tables re-prepare
/// automatically when a different plan is run.
#[derive(Clone, Debug)]
pub struct SimWorkspace {
    sv: Statevector,
    scratch: Vec<C64>,
    tables: BoundTables,
    /// Per-qubit `(lo, hi)` columns for the product-state fill that replaces
    /// a plan's leading rotation layer. Reused across evaluations.
    cols: Vec<(C64, C64)>,
    metrics: ExecMetrics,
}

impl SimWorkspace {
    /// A workspace sized for `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        let metrics = ExecMetrics::new();
        metrics.workspace_qubits.set(num_qubits as i64);
        Self {
            sv: Statevector::zero(num_qubits),
            scratch: Vec::new(),
            tables: BoundTables::new(),
            cols: Vec::new(),
            metrics,
        }
    }

    /// Current register width.
    pub fn num_qubits(&self) -> usize {
        self.sv.num_qubits()
    }

    /// The state left by the most recent [`run`](Self::run).
    pub fn statevector(&self) -> &Statevector {
        &self.sv
    }

    /// Mutable access to the held state (for gate-by-gate callers that
    /// still want buffer reuse, e.g. the noisy trajectory path).
    pub fn statevector_mut(&mut self) -> &mut Statevector {
        &mut self.sv
    }

    /// Resizes the workspace to `n` qubits. Reallocates only when the
    /// width actually changes.
    pub fn ensure_qubits(&mut self, n: usize) {
        if self.sv.num_qubits() != n {
            self.sv = Statevector::zero(n);
            self.scratch = Vec::new();
            self.metrics.workspace_qubits.set(n as i64);
            // Reallocation is the event worth seeing on a timeline: a
            // workspace bouncing between widths shows up as a stripe of
            // these markers.
            qdb_telemetry::global().instant("exec.resize");
        }
    }

    /// Evolves `|0…0⟩` through `cc` under `params`, leaving the result in
    /// [`statevector`](Self::statevector) and returning a reference to it.
    ///
    /// When the plan opens with a rotation layer (independent single-qubit
    /// unitaries), that layer *and* the reset collapse into one
    /// product-state fill — about one sweep of traffic replacing a reset
    /// plus up to ⌈n/2⌉ dense passes.
    ///
    /// The first call against a given plan prepares the bound tables (and
    /// the permutation scratch, if the plan has a permutation pass); every
    /// later call is allocation-free.
    pub fn run(&mut self, cc: &CompiledCircuit, params: &[f64]) -> &Statevector {
        self.ensure_qubits(cc.num_qubits());
        if !self.tables.prepared_for(cc) {
            self.tables.prepare(cc);
            self.metrics.table_rebinds.inc();
            qdb_telemetry::global().instant("exec.rebind");
        }
        self.metrics.runs.inc();
        cc.specialize(params, &mut self.tables);
        if cc.init_ops == 0 {
            self.sv.reset_zero();
            self.apply_ops(cc, 0);
        } else {
            self.cols.clear();
            self.cols.resize(cc.num_qubits(), (C64::ONE, C64::ZERO));
            for &(q, slot) in &cc.init_cols {
                let m = &self.tables.mats[slot as usize];
                self.cols[q as usize] = (m[0][0], m[1][0]);
            }
            self.sv.fill_product(&self.cols);
            self.apply_ops(cc, cc.init_ops);
        }
        &self.sv
    }

    /// Applies a compiled circuit to the *current* workspace state without
    /// resetting it (used when a caller prepares the state separately).
    pub fn apply(&mut self, cc: &CompiledCircuit, params: &[f64]) -> &Statevector {
        assert_eq!(cc.num_qubits(), self.sv.num_qubits(), "width mismatch");
        if !self.tables.prepared_for(cc) {
            self.tables.prepare(cc);
            self.metrics.table_rebinds.inc();
            qdb_telemetry::global().instant("exec.rebind");
        }
        self.metrics.runs.inc();
        cc.specialize(params, &mut self.tables);
        self.apply_ops(cc, 0);
        &self.sv
    }

    /// `⟨ψ(θ)| D |ψ(θ)⟩` for a diagonal Hamiltonian — the VQE hot loop in
    /// one call: run the compiled ansatz, then reduce.
    pub fn energy(&mut self, cc: &CompiledCircuit, params: &[f64], diag: &[f64]) -> f64 {
        self.run(cc, params).expectation_diagonal(diag)
    }

    /// Executes `cc.ops[start..]` against the current state. `start` is
    /// non-zero only on the [`run`](Self::run) path, where the leading ops
    /// were absorbed into the product-state fill.
    fn apply_ops(&mut self, cc: &CompiledCircuit, start: usize) {
        self.metrics.gate_ops.add((cc.ops.len() - start) as u64);
        for op in &cc.ops[start..] {
            match *op {
                PlanOp::Fused1 { q, slot } => {
                    self.sv
                        .apply_mat2(q as usize, &self.tables.mats[slot as usize]);
                }
                PlanOp::Diag { slot } => {
                    let spec = &cc.diags[slot as usize];
                    let singles = &self.tables.diag_singles
                        [spec.single_off..spec.single_off + spec.singles.len()];
                    let pairs =
                        &self.tables.diag_pairs[spec.pair_off..spec.pair_off + spec.pairs.len()];
                    self.sv.apply_phase_product(singles, pairs);
                }
                PlanOp::Perm { slot } => {
                    self.sv
                        .apply_bit_linear_perm(&cc.perms[slot as usize].masks, &mut self.scratch);
                }
                PlanOp::Cx { control, target } => {
                    self.sv.apply_cx(control as usize, target as usize);
                }
                PlanOp::Swap { a, b } => self.sv.apply_swap(a as usize, b as usize),
                PlanOp::Dense2 { q0, q1, slot } => {
                    self.sv
                        .apply_mat4(q0 as usize, q1 as usize, &self.tables.mats4[slot as usize]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{efficient_su2, Entanglement};
    use crate::circuit::Circuit;
    use crate::gate::{Angle, GateKind};

    /// Largest |compiled - direct| amplitude difference.
    fn max_amp_diff(ws: &SimWorkspace, direct: &Statevector) -> f64 {
        ws.statevector()
            .amplitudes()
            .iter()
            .zip(direct.amplitudes())
            .map(|(a, b)| (*a - *b).norm_sqr().sqrt())
            .fold(0.0, f64::max)
    }

    fn assert_matches_direct(c: &Circuit, params: &[f64]) {
        let cc = CompiledCircuit::compile(c);
        let mut ws = SimWorkspace::new(c.num_qubits());
        ws.run(&cc, params);
        let mut direct = Statevector::zero(c.num_qubits());
        direct.apply_parametric(c, params);
        let diff = max_amp_diff(&ws, &direct);
        assert!(diff < 1e-12, "compiled deviates from direct by {diff}");
    }

    #[test]
    fn bell_state_matches() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert_matches_direct(&c, &[]);
    }

    #[test]
    fn efficient_su2_matches_direct() {
        for n in [2usize, 3, 5, 8] {
            let c = efficient_su2(n, 2, Entanglement::Linear);
            let params: Vec<f64> = (0..c.num_params()).map(|i| 0.1 + 0.37 * i as f64).collect();
            assert_matches_direct(&c, &params);
        }
    }

    #[test]
    fn mixed_gate_soup_matches_direct() {
        let mut c = Circuit::new(4);
        c.h(0).sx(1).x(2);
        c.ry(3, 0.81);
        c.rz(0, -0.4);
        c.push1(GateKind::T, 1, None);
        c.cz(0, 2);
        c.push2(GateKind::Rzz, 1, 3, Some(Angle::Fixed(0.9)));
        c.cx(2, 3).cx(0, 1);
        c.swap(1, 2);
        c.ecr(0, 3);
        c.rx(2, 1.3);
        c.cx(3, 0);
        assert_matches_direct(&c, &[]);
    }

    #[test]
    fn rebinding_reuses_tables() {
        let c = efficient_su2(4, 2, Entanglement::Linear);
        let cc = CompiledCircuit::compile(&c);
        let mut ws = SimWorkspace::new(4);
        for trial in 0..3 {
            let params: Vec<f64> = (0..c.num_params())
                .map(|i| 0.05 * (trial + 1) as f64 * (i as f64 + 1.0))
                .collect();
            ws.run(&cc, &params);
            let mut direct = Statevector::zero(4);
            direct.apply_parametric(&c, &params);
            let diff = max_amp_diff(&ws, &direct);
            assert!(diff < 1e-12, "trial {trial}: deviation {diff}");
        }
    }

    #[test]
    fn workspace_survives_plan_and_width_changes() {
        let mut ws = SimWorkspace::new(2);
        let mut bell = Circuit::new(2);
        bell.h(0).cx(0, 1);
        let cc_bell = CompiledCircuit::compile(&bell);
        ws.run(&cc_bell, &[]);
        assert!((ws.statevector().probabilities()[3] - 0.5).abs() < 1e-12);

        let ghz_width = 3;
        let mut ghz = Circuit::new(ghz_width);
        ghz.h(0).cx(0, 1).cx(1, 2);
        let cc_ghz = CompiledCircuit::compile(&ghz);
        ws.run(&cc_ghz, &[]);
        assert_eq!(ws.num_qubits(), ghz_width);
        let p = ws.statevector().probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);

        // Back to the first plan: tables re-prepare transparently.
        ws.run(&cc_bell, &[]);
        assert!((ws.statevector().probabilities()[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_matches_direct_expectation() {
        let c = efficient_su2(3, 1, Entanglement::Linear);
        let cc = CompiledCircuit::compile(&c);
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.2 * i as f64 - 0.5).collect();
        let diag: Vec<f64> = (0..8).map(|i| i as f64 * 0.75 - 2.0).collect();
        let mut ws = SimWorkspace::new(3);
        let compiled = ws.energy(&cc, &params, &diag);
        let mut direct = Statevector::zero(3);
        direct.apply_parametric(&c, &params);
        let expected = direct.expectation_diagonal(&diag);
        assert!((compiled - expected).abs() < 1e-12);
    }

    #[test]
    fn large_register_crosses_parallel_threshold() {
        // 13 qubits = 8192 amplitudes > PAR_THRESHOLD: exercises the rayon
        // branches of every pass kind.
        let n = 13;
        let mut c = Circuit::new(n);
        for q in 0..n as u32 {
            c.ry(q, 0.1 + 0.2 * q as f64);
        }
        for q in 0..(n - 1) as u32 {
            c.cx(q, q + 1);
        }
        for q in 0..n as u32 {
            c.rz(q, -0.3 + 0.1 * q as f64);
        }
        c.ecr(0, (n - 1) as u32);
        c.cz(1, 5);
        assert_matches_direct(&c, &[]);
    }
}
