//! # qdb-quantum
//!
//! Gate-level quantum computing substrate for QDockBank-rs: complex
//! arithmetic, parameterized circuits, a rayon-parallel statevector
//! simulator, Pauli-sum operators with a diagonal fast path, shot sampling,
//! and a trajectory noise model calibrated to IBM Eagle-class hardware.
//!
//! This crate replaces the IBM Quantum + Qiskit execution layer used by the
//! paper (see DESIGN.md §1): the *logical* circuits of all 55 fragments fit
//! in ≤ 22 simulated qubits, while physical-hardware resources are modelled
//! by the companion `qdb-transpile` crate.
//!
//! ## Quick example
//!
//! ```
//! use qdb_quantum::prelude::*;
//!
//! // Bell state energy under H = Z0 Z1.
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let mut sv = Statevector::zero(2);
//! sv.apply_circuit(&c);
//! let h = SparsePauliOp::from_terms(2, vec![(PauliString::zz(0, 1), 1.0)]);
//! assert!((h.expectation(&sv) - 1.0).abs() < 1e-10);
//! ```

pub mod ansatz;
pub mod circuit;
pub mod compile;
pub mod complex;
pub mod exec;
pub mod gate;
pub mod gradient;
pub mod noise;
pub mod pauli;
pub mod sampler;
pub mod statevector;

/// One-stop import for the common types.
pub mod prelude {
    pub use crate::ansatz::{efficient_su2, real_amplitudes, Entanglement};
    pub use crate::circuit::{Circuit, Instruction};
    pub use crate::compile::{BoundTables, CompiledCircuit};
    pub use crate::complex::C64;
    pub use crate::exec::SimWorkspace;
    pub use crate::gate::{Angle, GateKind};
    pub use crate::noise::{apply_noisy, noisy_expectation, noisy_expectation_ws, NoiseModel};
    pub use crate::pauli::{PauliString, SparsePauliOp};
    pub use crate::sampler::{sample_counts, Counts};
    pub use crate::statevector::Statevector;
}
