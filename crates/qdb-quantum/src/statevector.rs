//! Rayon-parallel statevector simulation.
//!
//! Amplitudes are stored little-endian: basis index `i` has qubit `q` in bit
//! `q` of `i`. Single-qubit gates use the classic block/stride decomposition;
//! diagonal and permutation gates (`Rz`, `P`, `Z`, `Cz`, `Cx`, `Swap`, `Rzz`)
//! have dedicated in-place fast paths, and only genuinely dense two-qubit
//! unitaries (`Ecr`) fall back to a gather pass.
//!
//! Parallelism strategy: when the stride produces many independent blocks we
//! parallelize across blocks; when the target qubit is high (few, huge
//! blocks) we parallelize the paired inner loops instead. Either way the
//! work splits into disjoint mutable regions, so there is no locking and no
//! unsafe code.

use crate::circuit::Circuit;
use crate::complex::C64;
use crate::gate::{single_qubit_matrix, two_qubit_matrix, GateKind, Mat2};
use rayon::prelude::*;

/// Number of amplitudes below which we do not bother spawning rayon tasks.
const PAR_THRESHOLD: usize = 1 << 12;

/// A pure quantum state over `n` qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl Statevector {
    /// `|0…0⟩` over `num_qubits` qubits.
    ///
    /// # Panics
    /// Panics above 30 qubits — the dense representation would not fit in
    /// memory; large registers are handled by the resource model instead
    /// (see DESIGN.md §3.1).
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "dense statevector limited to 30 qubits");
        let mut amps = vec![C64::ZERO; 1usize << num_qubits];
        amps[0] = C64::ONE;
        Self { num_qubits, amps }
    }

    /// Builds a state from raw amplitudes (must be a power-of-two length).
    ///
    /// # Panics
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        let num_qubits = amps.len().trailing_zeros() as usize;
        Self { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Raw amplitudes, little-endian basis order.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// ⟨ψ|ψ⟩ — should be 1 for any circuit-evolved state.
    pub fn norm_sqr(&self) -> f64 {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_iter().map(|a| a.norm_sqr()).sum()
        } else {
            self.amps.iter().map(|a| a.norm_sqr()).sum()
        }
    }

    /// Measurement probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_iter().map(|a| a.norm_sqr()).collect()
        } else {
            self.amps.iter().map(|a| a.norm_sqr()).collect()
        }
    }

    /// ⟨φ|ψ⟩ inner product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn inner(&self, other: &Statevector) -> C64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Applies a bound circuit in program order.
    ///
    /// # Panics
    /// Panics if the circuit still has free parameters or is wider than the
    /// state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_params(), 0, "circuit has unbound parameters");
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit wider than state"
        );
        for instr in circuit.instructions() {
            let theta = instr.angle.map(|a| a.resolve(&[])).unwrap_or(0.0);
            match instr.kind.arity() {
                1 => self.apply_single(instr.kind, instr.q0 as usize, theta),
                _ => self.apply_two(instr.kind, instr.q0 as usize, instr.q1 as usize, theta),
            }
        }
    }

    /// Evaluates a parametric circuit: binds `params` and applies.
    pub fn apply_parametric(&mut self, circuit: &Circuit, params: &[f64]) {
        assert_eq!(circuit.num_params(), params.len(), "parameter count mismatch");
        for instr in circuit.instructions() {
            let theta = instr.angle.map(|a| a.resolve(params)).unwrap_or(0.0);
            match instr.kind.arity() {
                1 => self.apply_single(instr.kind, instr.q0 as usize, theta),
                _ => self.apply_two(instr.kind, instr.q0 as usize, instr.q1 as usize, theta),
            }
        }
    }

    /// Applies a single-qubit gate.
    pub fn apply_single(&mut self, kind: GateKind, q: usize, theta: f64) {
        debug_assert!(q < self.num_qubits);
        match kind {
            GateKind::Id => {}
            GateKind::Z => self.apply_phase_if_one(q, -C64::ONE),
            GateKind::S => self.apply_phase_if_one(q, C64::I),
            GateKind::Sdg => self.apply_phase_if_one(q, -C64::I),
            GateKind::T => self.apply_phase_if_one(q, C64::cis(std::f64::consts::FRAC_PI_4)),
            GateKind::Tdg => self.apply_phase_if_one(q, C64::cis(-std::f64::consts::FRAC_PI_4)),
            GateKind::P => self.apply_phase_if_one(q, C64::cis(theta)),
            GateKind::Rz => {
                let lo = C64::cis(-theta / 2.0);
                let hi = C64::cis(theta / 2.0);
                self.apply_diag1(q, lo, hi);
            }
            _ => {
                let m = single_qubit_matrix(kind, theta);
                self.apply_mat2(q, &m);
            }
        }
    }

    /// Applies a two-qubit gate.
    pub fn apply_two(&mut self, kind: GateKind, q0: usize, q1: usize, theta: f64) {
        debug_assert!(q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1);
        match kind {
            GateKind::Cx => self.apply_cx(q0, q1),
            GateKind::Cz => {
                let mask = (1usize << q0) | (1usize << q1);
                self.phase_where(move |i| i & mask == mask, -C64::ONE);
            }
            GateKind::Rzz => {
                let m0 = 1usize << q0;
                let m1 = 1usize << q1;
                let even = C64::cis(-theta / 2.0);
                let odd = C64::cis(theta / 2.0);
                self.map_amplitudes(move |i, a| {
                    let parity = ((i & m0 != 0) as u8) ^ ((i & m1 != 0) as u8);
                    if parity == 0 { a * even } else { a * odd }
                });
            }
            GateKind::Swap => self.apply_swap(q0, q1),
            _ => {
                let m = two_qubit_matrix(kind, theta);
                // Dense 4×4 gather pass (ECR and future dense gates).
                let bit0 = 1usize << q0;
                let bit1 = 1usize << q1;
                let old = std::mem::take(&mut self.amps);
                let gather = |i: usize| -> C64 {
                    let b0 = (i & bit0 != 0) as usize;
                    let b1 = (i & bit1 != 0) as usize;
                    let row = (b1 << 1) | b0;
                    let base = i & !(bit0 | bit1);
                    let mut acc = C64::ZERO;
                    for (col, &mij) in m[row].iter().enumerate() {
                        if mij == C64::ZERO {
                            continue;
                        }
                        let j = base
                            | if col & 1 != 0 { bit0 } else { 0 }
                            | if col & 2 != 0 { bit1 } else { 0 };
                        acc += mij * old[j];
                    }
                    acc
                };
                self.amps = if old.len() >= PAR_THRESHOLD {
                    (0..old.len()).into_par_iter().map(gather).collect()
                } else {
                    (0..old.len()).map(gather).collect()
                };
            }
        }
    }

    /// Multiplies the amplitude of every basis state with qubit `q` = 1 by
    /// `phase`.
    fn apply_phase_if_one(&mut self, q: usize, phase: C64) {
        let mask = 1usize << q;
        self.phase_where(move |i| i & mask != 0, phase);
    }

    fn apply_diag1(&mut self, q: usize, lo: C64, hi: C64) {
        let mask = 1usize << q;
        self.map_amplitudes(move |i, a| if i & mask == 0 { a * lo } else { a * hi });
    }

    fn phase_where<F: Fn(usize) -> bool + Sync>(&mut self, pred: F, phase: C64) {
        self.map_amplitudes(move |i, a| if pred(i) { a * phase } else { a });
    }

    fn map_amplitudes<F: Fn(usize, C64) -> C64 + Sync>(&mut self, f: F) {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, a)| *a = f(i, *a));
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = f(i, *a);
            }
        }
    }

    /// Dense 2×2 application using the block/stride decomposition.
    fn apply_mat2(&mut self, q: usize, m: &Mat2) {
        let step = 1usize << q;
        let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
        let kernel = |lo: &mut [C64], hi: &mut [C64]| {
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = m00 * x + m01 * y;
                *b = m10 * x + m11 * y;
            }
        };
        let blocks = self.amps.len() / (2 * step);
        if self.amps.len() < PAR_THRESHOLD {
            for chunk in self.amps.chunks_exact_mut(2 * step) {
                let (lo, hi) = chunk.split_at_mut(step);
                kernel(lo, hi);
            }
        } else if blocks >= 8 {
            // Many small blocks: parallelize across blocks.
            self.amps.par_chunks_exact_mut(2 * step).for_each(|chunk| {
                let (lo, hi) = chunk.split_at_mut(step);
                kernel(lo, hi);
            });
        } else {
            // Few huge blocks (high target qubit): parallelize within a block.
            for chunk in self.amps.chunks_exact_mut(2 * step) {
                let (lo, hi) = chunk.split_at_mut(step);
                lo.par_iter_mut().zip(hi.par_iter_mut()).for_each(|(a, b)| {
                    let (x, y) = (*a, *b);
                    *a = m00 * x + m01 * y;
                    *b = m10 * x + m11 * y;
                });
            }
        }
    }

    /// In-place CX: within the target-qubit block decomposition, swap the
    /// paired amplitudes whose control bit is set.
    fn apply_cx(&mut self, control: usize, target: usize) {
        let step = 1usize << target;
        let cmask = 1usize << control;
        let block = 2 * step;
        let run = |(bi, chunk): (usize, &mut [C64])| {
            let base = bi * block;
            let (lo, hi) = chunk.split_at_mut(step);
            for i in 0..step {
                if (base + i) & cmask != 0 {
                    std::mem::swap(&mut lo[i], &mut hi[i]);
                }
            }
        };
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps
                .par_chunks_exact_mut(block)
                .enumerate()
                .for_each(run);
        } else {
            self.amps.chunks_exact_mut(block).enumerate().for_each(run);
        }
    }

    /// In-place SWAP via the higher-bit block decomposition.
    fn apply_swap(&mut self, q0: usize, q1: usize) {
        let (l, h) = if q0 < q1 { (q0, q1) } else { (q0.min(q1), q0.max(q1)) };
        let step = 1usize << h;
        let lmask = 1usize << l;
        let block = 2 * step;
        let run = |chunk: &mut [C64]| {
            let (lo, hi) = chunk.split_at_mut(step);
            for i in 0..step {
                // |…h=0…l=1…⟩ ↔ |…h=1…l=0…⟩
                if i & lmask != 0 {
                    std::mem::swap(&mut lo[i], &mut hi[i ^ lmask]);
                }
            }
        };
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_chunks_exact_mut(block).for_each(run);
        } else {
            self.amps.chunks_exact_mut(block).for_each(run);
        }
    }

    /// ⟨ψ| D |ψ⟩ for a diagonal operator given as its diagonal.
    ///
    /// This is the VQE hot path: the protein folding Hamiltonian is diagonal
    /// in the computational basis (DESIGN.md §3.2).
    ///
    /// # Panics
    /// Panics if `diag.len() != 2^n`.
    pub fn expectation_diagonal(&self, diag: &[f64]) -> f64 {
        assert_eq!(diag.len(), self.dim(), "diagonal length mismatch");
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps
                .par_iter()
                .zip(diag.par_iter())
                .map(|(a, &e)| a.norm_sqr() * e)
                .sum()
        } else {
            self.amps
                .iter()
                .zip(diag.iter())
                .map(|(a, &e)| a.norm_sqr() * e)
                .sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Angle;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    const EPS: f64 = 1e-10;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < EPS, "{a} != {b}");
    }

    #[test]
    fn zero_state() {
        let sv = Statevector::zero(3);
        assert_eq!(sv.dim(), 8);
        assert_close(sv.norm_sqr(), 1.0);
        assert!(sv.amplitudes()[0].approx_eq(C64::ONE, EPS));
    }

    #[test]
    fn x_flips() {
        let mut sv = Statevector::zero(2);
        sv.apply_single(GateKind::X, 1, 0.0);
        // |10⟩ = index 2
        assert!(sv.amplitudes()[2].approx_eq(C64::ONE, EPS));
    }

    #[test]
    fn hadamard_uniform() {
        let mut sv = Statevector::zero(1);
        sv.apply_single(GateKind::H, 0, 0.0);
        for a in sv.amplitudes() {
            assert!((a.re - FRAC_1_SQRT_2).abs() < EPS);
        }
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = Statevector::zero(2);
        sv.apply_circuit(&c);
        let p = sv.probabilities();
        assert_close(p[0], 0.5);
        assert_close(p[3], 0.5);
        assert_close(p[1], 0.0);
        assert_close(p[2], 0.0);
    }

    #[test]
    fn ghz_high_qubit() {
        // Exercises both parallel strategies: low and high target qubits.
        let n = 14;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n as u32 {
            c.cx(q - 1, q);
        }
        let mut sv = Statevector::zero(n);
        sv.apply_circuit(&c);
        let p = sv.probabilities();
        assert_close(p[0], 0.5);
        assert_close(p[(1 << n) - 1], 0.5);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn rz_vs_phase_equivalence() {
        // Rz(θ) == e^{-iθ/2} P(θ): global phase must cancel in probabilities
        // and relative phase must match via inner products.
        let theta = 0.73;
        let mut a = Statevector::zero(1);
        a.apply_single(GateKind::H, 0, 0.0);
        a.apply_single(GateKind::Rz, 0, theta);

        let mut b = Statevector::zero(1);
        b.apply_single(GateKind::H, 0, 0.0);
        b.apply_single(GateKind::P, 0, theta);

        let overlap = a.inner(&b).abs();
        assert_close(overlap, 1.0);
    }

    #[test]
    fn cx_truth_table() {
        for (input, expected) in [(0b00usize, 0b00usize), (0b01, 0b11), (0b10, 0b10), (0b11, 0b01)]
        {
            let mut sv = Statevector::zero(2);
            if input & 1 != 0 {
                sv.apply_single(GateKind::X, 0, 0.0);
            }
            if input & 2 != 0 {
                sv.apply_single(GateKind::X, 1, 0.0);
            }
            sv.apply_two(GateKind::Cx, 0, 1, 0.0); // control q0, target q1
            let p = sv.probabilities();
            assert_close(p[expected], 1.0);
        }
    }

    #[test]
    fn swap_permutes() {
        let mut sv = Statevector::zero(3);
        sv.apply_single(GateKind::X, 0, 0.0); // |001⟩
        sv.apply_two(GateKind::Swap, 0, 2, 0.0); // → |100⟩
        assert_close(sv.probabilities()[4], 1.0);
    }

    #[test]
    fn cz_symmetric() {
        // CZ(a,b) == CZ(b,a)
        let mut prep = Circuit::new(2);
        prep.h(0).h(1);
        let mut a = Statevector::zero(2);
        a.apply_circuit(&prep);
        let mut b = a.clone();
        a.apply_two(GateKind::Cz, 0, 1, 0.0);
        b.apply_two(GateKind::Cz, 1, 0, 0.0);
        assert_close(a.inner(&b).abs(), 1.0);
    }

    #[test]
    fn ecr_equivalent_to_cx_up_to_local_rotations(){
        // ECR is locally equivalent to CX; check it is entangling and unitary
        // by evolving |00⟩ and verifying the reduced purity < 1.
        let mut sv = Statevector::zero(2);
        sv.apply_single(GateKind::H, 0, 0.0);
        sv.apply_two(GateKind::Ecr, 0, 1, 0.0);
        assert_close(sv.norm_sqr(), 1.0);
        // entanglement check: probability distribution over q1 given q0
        // cannot factorize into a product for a maximally entangling gate on
        // this input. Compute Schmidt coefficients via 2x2 SVD surrogate:
        // purity of reduced density matrix = sum |rho_ij|^2.
        let a = sv.amplitudes();
        // rho_q0 = Tr_q1 |ψ⟩⟨ψ|
        let mut rho = [[C64::ZERO; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    rho[i][j] += a[(k << 1) | i] * a[(k << 1) | j].conj();
                }
            }
        }
        let purity: f64 = (0..2)
            .map(|i| (0..2).map(|j| rho[i][j].norm_sqr()).sum::<f64>())
            .sum();
        assert!(purity < 0.75, "ECR should entangle H|0⟩⊗|0⟩, purity={purity}");
    }

    #[test]
    fn rzz_diagonal_phases() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        c.push2(GateKind::Rzz, 0, 1, Some(Angle::Fixed(PI)));
        let mut sv = Statevector::zero(2);
        sv.apply_circuit(&c);
        // Rzz(π) on |++⟩: amplitudes pick up ∓i phases by parity; norm intact.
        assert_close(sv.norm_sqr(), 1.0);
        let probs = sv.probabilities();
        for p in probs {
            assert_close(p, 0.25);
        }
    }

    #[test]
    fn parametric_apply_matches_bound() {
        let mut c = Circuit::new(3);
        c.ry_param(0);
        c.rz_param(1);
        c.cx(0, 1);
        c.ry_param(2);
        let params = [0.4, -1.1, 2.2];

        let mut a = Statevector::zero(3);
        a.apply_parametric(&c, &params);
        let mut b = Statevector::zero(3);
        b.apply_circuit(&c.bind(&params));
        assert!(a.inner(&b).abs() > 1.0 - EPS);
    }

    #[test]
    fn expectation_diagonal_basics() {
        let mut sv = Statevector::zero(2);
        sv.apply_single(GateKind::H, 0, 0.0);
        // diag = energies of basis states 00,01,10,11
        let diag = [1.0, 3.0, 5.0, 7.0];
        // state = (|00⟩+|01⟩)/√2 → E = (1+3)/2 = 2
        assert_close(sv.expectation_diagonal(&diag), 2.0);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut c = Circuit::new(6);
        for q in 0..6u32 {
            c.ry(q, 0.1 + q as f64 * 0.37);
            c.rz(q, -0.2 - q as f64 * 0.11);
        }
        for q in 0..5u32 {
            c.cx(q, q + 1);
        }
        for q in 0..6u32 {
            c.rx(q, 0.9 - q as f64 * 0.21);
        }
        c.ecr(2, 4);
        let mut sv = Statevector::zero(6);
        sv.apply_circuit(&c);
        assert_close(sv.norm_sqr(), 1.0);
    }
}
