//! Rayon-parallel statevector simulation.
//!
//! Amplitudes are stored little-endian: basis index `i` has qubit `q` in bit
//! `q` of `i`. Single-qubit gates use the classic block/stride decomposition;
//! diagonal and permutation gates (`Rz`, `P`, `Z`, `Cz`, `Cx`, `Swap`, `Rzz`)
//! have dedicated in-place fast paths, and only genuinely dense two-qubit
//! unitaries (`Ecr`) fall back to a gather pass.
//!
//! Parallelism strategy: when the stride produces many independent blocks we
//! parallelize across blocks; when the target qubit is high (few, huge
//! blocks) we parallelize the paired inner loops instead. Either way the
//! work splits into disjoint mutable regions, so there is no locking and no
//! unsafe code.

use crate::circuit::Circuit;
use crate::complex::C64;
use crate::gate::{single_qubit_matrix, two_qubit_matrix, GateKind, Mat2, Mat4};
use rayon::prelude::*;

/// Number of amplitudes below which we do not bother spawning rayon tasks.
const PAR_THRESHOLD: usize = 1 << 12;

/// A pure quantum state over `n` qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl Statevector {
    /// `|0…0⟩` over `num_qubits` qubits.
    ///
    /// # Panics
    /// Panics above 30 qubits — the dense representation would not fit in
    /// memory; large registers are handled by the resource model instead
    /// (see DESIGN.md §3.1).
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "dense statevector limited to 30 qubits");
        let mut amps = vec![C64::ZERO; 1usize << num_qubits];
        amps[0] = C64::ONE;
        Self { num_qubits, amps }
    }

    /// Builds a state from raw amplitudes (must be a power-of-two length).
    ///
    /// # Panics
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        let num_qubits = amps.len().trailing_zeros() as usize;
        Self { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Raw amplitudes, little-endian basis order.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// ⟨ψ|ψ⟩ — should be 1 for any circuit-evolved state.
    pub fn norm_sqr(&self) -> f64 {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_iter().map(|a| a.norm_sqr()).sum()
        } else {
            self.amps.iter().map(|a| a.norm_sqr()).sum()
        }
    }

    /// Measurement probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_iter().map(|a| a.norm_sqr()).collect()
        } else {
            self.amps.iter().map(|a| a.norm_sqr()).collect()
        }
    }

    /// ⟨φ|ψ⟩ inner product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn inner(&self, other: &Statevector) -> C64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Applies a bound circuit in program order.
    ///
    /// # Panics
    /// Panics if the circuit still has free parameters or is wider than the
    /// state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_params(), 0, "circuit has unbound parameters");
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit wider than state"
        );
        for instr in circuit.instructions() {
            let theta = instr.angle.map(|a| a.resolve(&[])).unwrap_or(0.0);
            match instr.kind.arity() {
                1 => self.apply_single(instr.kind, instr.q0 as usize, theta),
                _ => self.apply_two(instr.kind, instr.q0 as usize, instr.q1 as usize, theta),
            }
        }
    }

    /// Evaluates a parametric circuit: binds `params` and applies.
    pub fn apply_parametric(&mut self, circuit: &Circuit, params: &[f64]) {
        assert_eq!(
            circuit.num_params(),
            params.len(),
            "parameter count mismatch"
        );
        for instr in circuit.instructions() {
            let theta = instr.angle.map(|a| a.resolve(params)).unwrap_or(0.0);
            match instr.kind.arity() {
                1 => self.apply_single(instr.kind, instr.q0 as usize, theta),
                _ => self.apply_two(instr.kind, instr.q0 as usize, instr.q1 as usize, theta),
            }
        }
    }

    /// Applies a single-qubit gate.
    pub fn apply_single(&mut self, kind: GateKind, q: usize, theta: f64) {
        debug_assert!(q < self.num_qubits);
        match kind {
            GateKind::Id => {}
            GateKind::Z => self.apply_phase_if_one(q, -C64::ONE),
            GateKind::S => self.apply_phase_if_one(q, C64::I),
            GateKind::Sdg => self.apply_phase_if_one(q, -C64::I),
            GateKind::T => self.apply_phase_if_one(q, C64::cis(std::f64::consts::FRAC_PI_4)),
            GateKind::Tdg => self.apply_phase_if_one(q, C64::cis(-std::f64::consts::FRAC_PI_4)),
            GateKind::P => self.apply_phase_if_one(q, C64::cis(theta)),
            GateKind::Rz => {
                let lo = C64::cis(-theta / 2.0);
                let hi = C64::cis(theta / 2.0);
                self.apply_diag1(q, lo, hi);
            }
            _ => {
                let m = single_qubit_matrix(kind, theta);
                self.apply_mat2(q, &m);
            }
        }
    }

    /// Applies a two-qubit gate.
    pub fn apply_two(&mut self, kind: GateKind, q0: usize, q1: usize, theta: f64) {
        debug_assert!(q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1);
        match kind {
            GateKind::Cx => self.apply_cx(q0, q1),
            GateKind::Cz => {
                let mask = (1usize << q0) | (1usize << q1);
                self.phase_where(move |i| i & mask == mask, -C64::ONE);
            }
            GateKind::Rzz => {
                let m0 = 1usize << q0;
                let m1 = 1usize << q1;
                // Phase selected by parity from a precomputed table — the
                // per-amplitude closure stays branch- and trig-free.
                let phases = [C64::cis(-theta / 2.0), C64::cis(theta / 2.0)];
                self.map_amplitudes(move |i, a| {
                    let parity = ((i & m0 != 0) ^ (i & m1 != 0)) as usize;
                    a * phases[parity]
                });
            }
            GateKind::Swap => self.apply_swap(q0, q1),
            _ => {
                // Dense 4×4 in place (ECR and future dense gates).
                let m = two_qubit_matrix(kind, theta);
                self.apply_mat4(q0, q1, &m);
            }
        }
    }

    /// Multiplies the amplitude of every basis state with qubit `q` = 1 by
    /// `phase`.
    fn apply_phase_if_one(&mut self, q: usize, phase: C64) {
        let mask = 1usize << q;
        self.phase_where(move |i| i & mask != 0, phase);
    }

    fn apply_diag1(&mut self, q: usize, lo: C64, hi: C64) {
        let mask = 1usize << q;
        self.map_amplitudes(move |i, a| if i & mask == 0 { a * lo } else { a * hi });
    }

    fn phase_where<F: Fn(usize) -> bool + Sync>(&mut self, pred: F, phase: C64) {
        self.map_amplitudes(move |i, a| if pred(i) { a * phase } else { a });
    }

    fn map_amplitudes<F: Fn(usize, C64) -> C64 + Sync>(&mut self, f: F) {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, a)| *a = f(i, *a));
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = f(i, *a);
            }
        }
    }

    /// Dense 2×2 application using the block/stride decomposition.
    pub(crate) fn apply_mat2(&mut self, q: usize, m: &Mat2) {
        let step = 1usize << q;
        let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
        let kernel = |lo: &mut [C64], hi: &mut [C64]| {
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = m00 * x + m01 * y;
                *b = m10 * x + m11 * y;
            }
        };
        let blocks = self.amps.len() / (2 * step);
        if self.amps.len() < PAR_THRESHOLD {
            for chunk in self.amps.chunks_exact_mut(2 * step) {
                let (lo, hi) = chunk.split_at_mut(step);
                kernel(lo, hi);
            }
        } else if blocks >= 8 {
            // Many small blocks: parallelize across blocks.
            self.amps.par_chunks_exact_mut(2 * step).for_each(|chunk| {
                let (lo, hi) = chunk.split_at_mut(step);
                kernel(lo, hi);
            });
        } else {
            // Few huge blocks (high target qubit): parallelize within a block.
            for chunk in self.amps.chunks_exact_mut(2 * step) {
                let (lo, hi) = chunk.split_at_mut(step);
                lo.par_iter_mut().zip(hi.par_iter_mut()).for_each(|(a, b)| {
                    let (x, y) = (*a, *b);
                    *a = m00 * x + m01 * y;
                    *b = m10 * x + m11 * y;
                });
            }
        }
    }

    /// In-place dense 4×4 two-qubit application. `q0` is the first operand
    /// and the matrix uses the `|q1 q0⟩` basis of [`two_qubit_matrix`].
    ///
    /// The four coupled amplitudes of every group sit at fixed offsets
    /// inside a `2·2^hi` chunk, so the update runs in place over disjoint
    /// chunks: no gather buffer, no allocation (see
    /// [`Self::apply_quad_groups`] for the traversal).
    pub(crate) fn apply_mat4(&mut self, q0: usize, q1: usize, m: &Mat4) {
        debug_assert!(q0 != q1 && q0 < self.num_qubits && q1 < self.num_qubits);
        let (l, h) = if q0 < q1 { (q0, q1) } else { (q1, q0) };
        // Reindex the matrix from |q1 q0⟩ to |bit_h bit_l⟩ order once so the
        // kernel below is position-uniform regardless of operand order.
        let map = |pos: usize| -> usize {
            if q0 == l {
                pos
            } else {
                ((pos & 1) << 1) | (pos >> 1)
            }
        };
        let mut w = [[C64::ZERO; 4]; 4];
        for (r, row) in w.iter_mut().enumerate() {
            for (c, entry) in row.iter_mut().enumerate() {
                *entry = m[map(r)][map(c)];
            }
        }
        let quad = move |x0: C64, x1: C64, x2: C64, x3: C64| -> (C64, C64, C64, C64) {
            (
                w[0][0] * x0 + w[0][1] * x1 + w[0][2] * x2 + w[0][3] * x3,
                w[1][0] * x0 + w[1][1] * x1 + w[1][2] * x2 + w[1][3] * x3,
                w[2][0] * x0 + w[2][1] * x1 + w[2][2] * x2 + w[2][3] * x3,
                w[3][0] * x0 + w[3][1] * x1 + w[3][2] * x2 + w[3][3] * x3,
            )
        };
        self.apply_quad_groups(l, h, quad);
    }

    /// Overwrites the state with the product state `⊗_q (lo_q|0⟩ + hi_q|1⟩)`
    /// by recursive doubling: amplitude blocks double qubit by qubit, so the
    /// total work is `Σ_q 2^q ≈ 2^n` complex multiplies — about one sweep of
    /// traffic, regardless of how many qubits carry a non-trivial column.
    ///
    /// This replaces `reset_zero` *plus* an entire leading rotation layer of
    /// a compiled plan (see [`crate::compile`]): applying independent
    /// single-qubit unitaries to `|0…0⟩` yields exactly the product of their
    /// first columns. Every amplitude is written before it is read, so no
    /// prior reset is needed.
    pub(crate) fn fill_product(&mut self, cols: &[(C64, C64)]) {
        debug_assert_eq!(cols.len(), self.num_qubits);
        self.amps[0] = C64::ONE;
        for (q, &(lo, hi)) in cols.iter().enumerate() {
            let half = 1usize << q;
            let (a, b) = self.amps[..2 * half].split_at_mut(half);
            let kernel = |x: &mut C64, y: &mut C64| {
                let v = *x;
                *x = v * lo;
                *y = v * hi;
            };
            if half >= PAR_THRESHOLD {
                a.par_iter_mut()
                    .zip(b.par_iter_mut())
                    .for_each(|(x, y)| kernel(x, y));
            } else {
                for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                    kernel(x, y);
                }
            }
        }
    }

    /// Shared traversal for two-qubit group updates: applies `quad` to every
    /// coupled 4-amplitude group `(l‑bit, h‑bit) ∈ {0,1}²` with `l < h`.
    /// Parallelism mirrors [`Self::apply_mat2`]: across chunks when there
    /// are many, across the paired sub-chunks when chunks are huge, and
    /// elementwise across the four strands when both qubits are at the top
    /// of the register.
    fn apply_quad_groups<F>(&mut self, l: usize, h: usize, quad: F)
    where
        F: Fn(C64, C64, C64, C64) -> (C64, C64, C64, C64) + Copy + Send + Sync,
    {
        let step_l = 1usize << l;
        let step_h = 1usize << h;
        // clo/chi are paired `2·step_l` slices with h-bit 0 and 1.
        let pair_kernel = move |clo: &mut [C64], chi: &mut [C64]| {
            let (a0, a1) = clo.split_at_mut(step_l);
            let (a2, a3) = chi.split_at_mut(step_l);
            for k in 0..step_l {
                let (y0, y1, y2, y3) = quad(a0[k], a1[k], a2[k], a3[k]);
                a0[k] = y0;
                a1[k] = y1;
                a2[k] = y2;
                a3[k] = y3;
            }
        };
        let chunk_kernel = move |chunk: &mut [C64]| {
            let (lo, hi) = chunk.split_at_mut(step_h);
            for (clo, chi) in lo
                .chunks_exact_mut(2 * step_l)
                .zip(hi.chunks_exact_mut(2 * step_l))
            {
                pair_kernel(clo, chi);
            }
        };
        let chunks = self.amps.len() / (2 * step_h);
        let sub_pairs = step_h / (2 * step_l);
        if self.amps.len() < PAR_THRESHOLD {
            self.amps
                .chunks_exact_mut(2 * step_h)
                .for_each(chunk_kernel);
        } else if chunks >= 8 {
            // Many chunks: parallelize across them.
            self.amps
                .par_chunks_exact_mut(2 * step_h)
                .for_each(chunk_kernel);
        } else if sub_pairs >= 8 {
            // Few huge chunks (high `h`): parallelize the paired sub-chunks.
            for chunk in self.amps.chunks_exact_mut(2 * step_h) {
                let (lo, hi) = chunk.split_at_mut(step_h);
                lo.par_chunks_exact_mut(2 * step_l)
                    .zip(hi.par_chunks_exact_mut(2 * step_l))
                    .for_each(|(clo, chi)| pair_kernel(clo, chi));
            }
        } else {
            // Both qubits at the top: zip the four strands elementwise.
            for chunk in self.amps.chunks_exact_mut(2 * step_h) {
                let (lo, hi) = chunk.split_at_mut(step_h);
                for (clo, chi) in lo
                    .chunks_exact_mut(2 * step_l)
                    .zip(hi.chunks_exact_mut(2 * step_l))
                {
                    let (a0, a1) = clo.split_at_mut(step_l);
                    let (a2, a3) = chi.split_at_mut(step_l);
                    a0.par_iter_mut()
                        .zip(a1.par_iter_mut())
                        .zip(a2.par_iter_mut())
                        .zip(a3.par_iter_mut())
                        .for_each(|(((x0, x1), x2), x3)| {
                            let (y0, y1, y2, y3) = quad(*x0, *x1, *x2, *x3);
                            *x0 = y0;
                            *x1 = y1;
                            *x2 = y2;
                            *x3 = y3;
                        });
                }
            }
        }
    }

    /// Multiplies every amplitude by a product of per-qubit and per-pair
    /// diagonal phases — one sweep executes an entire coalesced diagonal
    /// pass (see [`crate::compile`]).
    ///
    /// `singles` entries are `(mask, lo, hi)`: amplitude `i` picks `lo` when
    /// `i & mask == 0`, else `hi`. `pairs` entries are `(mask0, mask1,
    /// table)` with the table indexed by `(bit1 << 1) | bit0`.
    pub(crate) fn apply_phase_product(
        &mut self,
        singles: &[(usize, C64, C64)],
        pairs: &[(usize, usize, [C64; 4])],
    ) {
        self.map_amplitudes(move |i, a| {
            let mut phase = C64::ONE;
            for &(mask, lo, hi) in singles {
                phase = phase * if i & mask == 0 { lo } else { hi };
            }
            for &(m0, m1, table) in pairs {
                let idx = (((i & m1 != 0) as usize) << 1) | ((i & m0 != 0) as usize);
                phase = phase * table[idx];
            }
            a * phase
        });
    }

    /// Applies a composed basis permutation given as a bit-linear gather
    /// map: `amps'[j] = amps[G(j)]` where bit `t` of `G(j)` is
    /// `parity(j & masks[t])` (see [`crate::compile`]).
    ///
    /// The gather writes into `scratch` (contiguous writes, scattered
    /// reads — safe to parallelize) and the buffers are swapped; `scratch`
    /// reallocates only when the register width changes.
    ///
    /// Evaluating `G` from the masks costs n popcounts per amplitude, which
    /// makes the gather compute-bound. Instead the kernel walks the indices
    /// in order and updates `G` incrementally: `j` and `j+1` differ by the
    /// mask `2^(k+1)−1` with `k = trailing_ones(j)`, and `G` is linear over
    /// F₂, so `G(j+1) = G(j) ^ steps[k]` where `steps[k] = G(2^(k+1)−1)` —
    /// one table lookup and one XOR per amplitude.
    pub(crate) fn apply_bit_linear_perm(&mut self, masks: &[usize], scratch: &mut Vec<C64>) {
        debug_assert_eq!(masks.len(), self.num_qubits);
        scratch.resize(self.amps.len(), C64::ZERO);
        let n = self.num_qubits;
        // Column images G(2^b) — bit t of G(2^b) is bit b of masks[t] —
        // and their prefix XORs steps[k] = G(2^(k+1)−1). Stack arrays: the
        // register is capped at 30 qubits and the pass must not allocate.
        let mut cols = [0usize; 32];
        for (b, col) in cols.iter_mut().enumerate().take(n) {
            for (t, &mask) in masks.iter().enumerate() {
                *col |= ((mask >> b) & 1) << t;
            }
        }
        let mut steps = [0usize; 33];
        let mut acc = 0usize;
        for k in 0..n {
            acc ^= cols[k];
            steps[k] = acc;
        }
        let g_of = |j: usize| -> usize {
            let mut src = 0usize;
            for (t, &mask) in masks.iter().enumerate() {
                src |= (((j & mask).count_ones() as usize) & 1) << t;
            }
            src
        };
        let amps = &self.amps;
        // steps[n] stays 0: it is touched only by the dead final update of
        // the last chunk (index 2^n) and never affects an output value.
        let kernel = |j0: usize, out: &mut [C64]| {
            let mut src = g_of(j0);
            for (off, s) in out.iter_mut().enumerate() {
                *s = amps[src];
                src ^= steps[(j0 + off + 1).trailing_zeros() as usize];
            }
        };
        const CHUNK: usize = 1 << 11;
        if scratch.len() >= PAR_THRESHOLD {
            scratch
                .par_chunks_mut(CHUNK)
                .enumerate()
                .for_each(|(ci, out)| kernel(ci * CHUNK, out));
        } else {
            kernel(0, scratch.as_mut_slice());
        }
        std::mem::swap(&mut self.amps, scratch);
    }

    /// Resets the state to `|0…0⟩` in place, without reallocating.
    pub fn reset_zero(&mut self) {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_iter_mut().for_each(|a| *a = C64::ZERO);
        } else {
            self.amps.fill(C64::ZERO);
        }
        self.amps[0] = C64::ONE;
    }

    /// In-place CX: within the target-qubit block decomposition, swap the
    /// paired amplitudes whose control bit is set.
    pub(crate) fn apply_cx(&mut self, control: usize, target: usize) {
        let step = 1usize << target;
        let cmask = 1usize << control;
        let block = 2 * step;
        let run = |(bi, chunk): (usize, &mut [C64])| {
            let base = bi * block;
            let (lo, hi) = chunk.split_at_mut(step);
            for i in 0..step {
                if (base + i) & cmask != 0 {
                    std::mem::swap(&mut lo[i], &mut hi[i]);
                }
            }
        };
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps
                .par_chunks_exact_mut(block)
                .enumerate()
                .for_each(run);
        } else {
            self.amps.chunks_exact_mut(block).enumerate().for_each(run);
        }
    }

    /// In-place SWAP via the higher-bit block decomposition.
    pub(crate) fn apply_swap(&mut self, q0: usize, q1: usize) {
        let (l, h) = if q0 < q1 { (q0, q1) } else { (q1, q0) };
        let step = 1usize << h;
        let lmask = 1usize << l;
        let block = 2 * step;
        let run = |chunk: &mut [C64]| {
            let (lo, hi) = chunk.split_at_mut(step);
            for i in 0..step {
                // |…h=0…l=1…⟩ ↔ |…h=1…l=0…⟩
                if i & lmask != 0 {
                    std::mem::swap(&mut lo[i], &mut hi[i ^ lmask]);
                }
            }
        };
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_chunks_exact_mut(block).for_each(run);
        } else {
            self.amps.chunks_exact_mut(block).for_each(run);
        }
    }

    /// ⟨ψ| D |ψ⟩ for a diagonal operator given as its diagonal.
    ///
    /// This is the VQE hot path: the protein folding Hamiltonian is diagonal
    /// in the computational basis (DESIGN.md §3.2).
    ///
    /// # Panics
    /// Panics if `diag.len() != 2^n`.
    pub fn expectation_diagonal(&self, diag: &[f64]) -> f64 {
        assert_eq!(diag.len(), self.dim(), "diagonal length mismatch");
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps
                .par_iter()
                .zip(diag.par_iter())
                .map(|(a, &e)| a.norm_sqr() * e)
                .sum()
        } else {
            self.amps
                .iter()
                .zip(diag.iter())
                .map(|(a, &e)| a.norm_sqr() * e)
                .sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Angle;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    const EPS: f64 = 1e-10;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < EPS, "{a} != {b}");
    }

    #[test]
    fn zero_state() {
        let sv = Statevector::zero(3);
        assert_eq!(sv.dim(), 8);
        assert_close(sv.norm_sqr(), 1.0);
        assert!(sv.amplitudes()[0].approx_eq(C64::ONE, EPS));
    }

    #[test]
    fn fill_product_matches_gate_application() {
        // The product fill must equal reset + one single-qubit unitary per
        // qubit, below and above the parallel threshold, including on a
        // state holding stale amplitudes from a previous run.
        for n in [3usize, 13] {
            let mats: Vec<Mat2> = (0..n)
                .map(|q| single_qubit_matrix(GateKind::Ry, 0.3 + 0.17 * q as f64))
                .collect();
            let cols: Vec<(C64, C64)> = mats.iter().map(|m| (m[0][0], m[1][0])).collect();
            let mut filled = Statevector::zero(n);
            filled.apply_single(GateKind::H, 0, 0.0); // leave non-trivial state
            filled.fill_product(&cols);
            let mut expected = Statevector::zero(n);
            for (q, m) in mats.iter().enumerate() {
                expected.apply_mat2(q, m);
            }
            for (a, b) in filled.amplitudes().iter().zip(expected.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-12), "n={n}: {a:?} != {b:?}");
            }
        }
    }

    #[test]
    fn x_flips() {
        let mut sv = Statevector::zero(2);
        sv.apply_single(GateKind::X, 1, 0.0);
        // |10⟩ = index 2
        assert!(sv.amplitudes()[2].approx_eq(C64::ONE, EPS));
    }

    #[test]
    fn hadamard_uniform() {
        let mut sv = Statevector::zero(1);
        sv.apply_single(GateKind::H, 0, 0.0);
        for a in sv.amplitudes() {
            assert!((a.re - FRAC_1_SQRT_2).abs() < EPS);
        }
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = Statevector::zero(2);
        sv.apply_circuit(&c);
        let p = sv.probabilities();
        assert_close(p[0], 0.5);
        assert_close(p[3], 0.5);
        assert_close(p[1], 0.0);
        assert_close(p[2], 0.0);
    }

    #[test]
    fn ghz_high_qubit() {
        // Exercises both parallel strategies: low and high target qubits.
        let n = 14;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n as u32 {
            c.cx(q - 1, q);
        }
        let mut sv = Statevector::zero(n);
        sv.apply_circuit(&c);
        let p = sv.probabilities();
        assert_close(p[0], 0.5);
        assert_close(p[(1 << n) - 1], 0.5);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn rz_vs_phase_equivalence() {
        // Rz(θ) == e^{-iθ/2} P(θ): global phase must cancel in probabilities
        // and relative phase must match via inner products.
        let theta = 0.73;
        let mut a = Statevector::zero(1);
        a.apply_single(GateKind::H, 0, 0.0);
        a.apply_single(GateKind::Rz, 0, theta);

        let mut b = Statevector::zero(1);
        b.apply_single(GateKind::H, 0, 0.0);
        b.apply_single(GateKind::P, 0, theta);

        let overlap = a.inner(&b).abs();
        assert_close(overlap, 1.0);
    }

    #[test]
    fn cx_truth_table() {
        for (input, expected) in [
            (0b00usize, 0b00usize),
            (0b01, 0b11),
            (0b10, 0b10),
            (0b11, 0b01),
        ] {
            let mut sv = Statevector::zero(2);
            if input & 1 != 0 {
                sv.apply_single(GateKind::X, 0, 0.0);
            }
            if input & 2 != 0 {
                sv.apply_single(GateKind::X, 1, 0.0);
            }
            sv.apply_two(GateKind::Cx, 0, 1, 0.0); // control q0, target q1
            let p = sv.probabilities();
            assert_close(p[expected], 1.0);
        }
    }

    #[test]
    fn swap_permutes() {
        let mut sv = Statevector::zero(3);
        sv.apply_single(GateKind::X, 0, 0.0); // |001⟩
        sv.apply_two(GateKind::Swap, 0, 2, 0.0); // → |100⟩
        assert_close(sv.probabilities()[4], 1.0);
    }

    #[test]
    fn cz_symmetric() {
        // CZ(a,b) == CZ(b,a)
        let mut prep = Circuit::new(2);
        prep.h(0).h(1);
        let mut a = Statevector::zero(2);
        a.apply_circuit(&prep);
        let mut b = a.clone();
        a.apply_two(GateKind::Cz, 0, 1, 0.0);
        b.apply_two(GateKind::Cz, 1, 0, 0.0);
        assert_close(a.inner(&b).abs(), 1.0);
    }

    #[test]
    fn ecr_equivalent_to_cx_up_to_local_rotations() {
        // ECR is locally equivalent to CX; check it is entangling and unitary
        // by evolving |00⟩ and verifying the reduced purity < 1.
        let mut sv = Statevector::zero(2);
        sv.apply_single(GateKind::H, 0, 0.0);
        sv.apply_two(GateKind::Ecr, 0, 1, 0.0);
        assert_close(sv.norm_sqr(), 1.0);
        // entanglement check: probability distribution over q1 given q0
        // cannot factorize into a product for a maximally entangling gate on
        // this input. Compute Schmidt coefficients via 2x2 SVD surrogate:
        // purity of reduced density matrix = sum |rho_ij|^2.
        let a = sv.amplitudes();
        // rho_q0 = Tr_q1 |ψ⟩⟨ψ|
        let mut rho = [[C64::ZERO; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    rho[i][j] += a[(k << 1) | i] * a[(k << 1) | j].conj();
                }
            }
        }
        let purity: f64 = (0..2)
            .map(|i| (0..2).map(|j| rho[i][j].norm_sqr()).sum::<f64>())
            .sum();
        assert!(
            purity < 0.75,
            "ECR should entangle H|0⟩⊗|0⟩, purity={purity}"
        );
    }

    #[test]
    fn rzz_diagonal_phases() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        c.push2(GateKind::Rzz, 0, 1, Some(Angle::Fixed(PI)));
        let mut sv = Statevector::zero(2);
        sv.apply_circuit(&c);
        // Rzz(π) on |++⟩: amplitudes pick up ∓i phases by parity; norm intact.
        assert_close(sv.norm_sqr(), 1.0);
        let probs = sv.probabilities();
        for p in probs {
            assert_close(p, 0.25);
        }
    }

    #[test]
    fn parametric_apply_matches_bound() {
        let mut c = Circuit::new(3);
        c.ry_param(0);
        c.rz_param(1);
        c.cx(0, 1);
        c.ry_param(2);
        let params = [0.4, -1.1, 2.2];

        let mut a = Statevector::zero(3);
        a.apply_parametric(&c, &params);
        let mut b = Statevector::zero(3);
        b.apply_circuit(&c.bind(&params));
        assert!(a.inner(&b).abs() > 1.0 - EPS);
    }

    #[test]
    fn expectation_diagonal_basics() {
        let mut sv = Statevector::zero(2);
        sv.apply_single(GateKind::H, 0, 0.0);
        // diag = energies of basis states 00,01,10,11
        let diag = [1.0, 3.0, 5.0, 7.0];
        // state = (|00⟩+|01⟩)/√2 → E = (1+3)/2 = 2
        assert_close(sv.expectation_diagonal(&diag), 2.0);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut c = Circuit::new(6);
        for q in 0..6u32 {
            c.ry(q, 0.1 + q as f64 * 0.37);
            c.rz(q, -0.2 - q as f64 * 0.11);
        }
        for q in 0..5u32 {
            c.cx(q, q + 1);
        }
        for q in 0..6u32 {
            c.rx(q, 0.9 - q as f64 * 0.21);
        }
        c.ecr(2, 4);
        let mut sv = Statevector::zero(6);
        sv.apply_circuit(&c);
        assert_close(sv.norm_sqr(), 1.0);
    }
}
