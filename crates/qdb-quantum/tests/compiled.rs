//! Property-based equivalence: the compiled execution engine must match
//! direct gate-by-gate application to 1e-12 on random circuits drawn from
//! the full gate alphabet (fused rotations, coalesced diagonals, composed
//! permutations, dense two-qubit gates, parametric bindings).

use proptest::prelude::*;
use qdb_quantum::prelude::*;

/// Strategy: a random circuit over `n` qubits mixing every compilation
/// path — single-qubit runs, diagonal gates, permutation gates, dense
/// two-qubit gates, and parametric rotations (`ry_param`/`rz_param`).
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..14u8, 0..n as u32, 0..n as u32, -3.2f64..3.2);
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (kind, q0, q1, theta) in gates {
            match kind {
                0 => {
                    c.h(q0);
                }
                1 => {
                    c.x(q0);
                }
                2 => {
                    c.sx(q0);
                }
                3 => {
                    c.ry(q0, theta);
                }
                4 => {
                    c.rz(q0, theta);
                }
                5 => {
                    c.rx(q0, theta);
                }
                6 => {
                    c.ry_param(q0);
                }
                7 => {
                    c.rz_param(q0);
                }
                8 => {
                    c.push1(GateKind::S, q0, None);
                }
                9 => {
                    c.push1(GateKind::T, q0, None);
                }
                10 => {
                    c.push1(GateKind::P, q0, Some(Angle::Fixed(theta)));
                }
                11 if q0 != q1 => {
                    c.cx(q0, q1);
                }
                12 if q0 != q1 => {
                    c.cz(q0, q1);
                }
                13 if q0 != q1 => {
                    c.swap(q0, q1);
                }
                _ if q0 != q1 => {
                    if theta > 0.0 {
                        c.push2(GateKind::Rzz, q0, q1, Some(Angle::Fixed(theta)));
                    } else {
                        c.ecr(q0, q1);
                    }
                }
                _ => {
                    c.push1(GateKind::Sdg, q0, None);
                }
            }
        }
        c
    })
}

/// Maximum amplitude difference between the compiled engine and direct
/// gate-by-gate application, both evaluated on the same binding.
fn engine_divergence(c: &Circuit, pool: &[f64]) -> f64 {
    let params = &pool[..c.num_params()];
    let mut direct = Statevector::zero(c.num_qubits());
    direct.apply_parametric(c, params);
    let compiled = CompiledCircuit::compile(c);
    let mut ws = SimWorkspace::new(c.num_qubits());
    ws.run(&compiled, params);
    ws.statevector()
        .amplitudes()
        .iter()
        .zip(direct.amplitudes())
        .map(|(a, b)| (*a - *b).norm_sqr().sqrt())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled execution matches direct application to 1e-12 on random
    /// narrow circuits (all compilation paths, dense bindings).
    #[test]
    fn compiled_matches_direct_small(
        (c, pool) in (1usize..=6).prop_flat_map(|n| (
            arb_circuit(n, 40),
            proptest::collection::vec(-3.2f64..3.2, 48),
        )),
    ) {
        prop_assume!(c.num_params() <= pool.len());
        let d = engine_divergence(&c, &pool);
        prop_assert!(d < 1e-12, "max amplitude divergence {d}");
    }

    /// Same property on wider registers (up to 12 qubits), shorter runs.
    #[test]
    fn compiled_matches_direct_wide(
        (c, pool) in (7usize..=12).prop_flat_map(|n| (
            arb_circuit(n, 28),
            proptest::collection::vec(-3.2f64..3.2, 32),
        )),
    ) {
        prop_assume!(c.num_params() <= pool.len());
        let d = engine_divergence(&c, &pool);
        prop_assert!(d < 1e-12, "max amplitude divergence {d}");
    }

    /// Re-binding a compiled circuit (specialize-only path) agrees with a
    /// fresh direct evaluation for every binding in a sequence.
    #[test]
    fn rebinding_matches_direct(
        (c, pools) in (2usize..=5).prop_flat_map(|n| (
            arb_circuit(n, 24),
            proptest::collection::vec(proptest::collection::vec(-3.2f64..3.2, 32), 3),
        )),
    ) {
        prop_assume!(pools.iter().all(|p| c.num_params() <= p.len()));
        let compiled = CompiledCircuit::compile(&c);
        let mut ws = SimWorkspace::new(c.num_qubits());
        for pool in &pools {
            let params = &pool[..c.num_params()];
            ws.run(&compiled, params);
            let mut direct = Statevector::zero(c.num_qubits());
            direct.apply_parametric(&c, params);
            let d = ws
                .statevector()
                .amplitudes()
                .iter()
                .zip(direct.amplitudes())
                .map(|(a, b)| (*a - *b).norm_sqr().sqrt())
                .fold(0.0, f64::max);
            prop_assert!(d < 1e-12, "max amplitude divergence {d} after rebind");
        }
    }

    /// The engines agree on the physical observable the VQE loop actually
    /// consumes: the diagonal expectation.
    #[test]
    fn energy_matches_direct(
        (c, pool) in (2usize..=8).prop_flat_map(|n| (
            arb_circuit(n, 32),
            proptest::collection::vec(-3.2f64..3.2, 40),
        )),
    ) {
        prop_assume!(c.num_params() <= pool.len());
        let n = c.num_qubits();
        let params = &pool[..c.num_params()];
        let diag: Vec<f64> = (0..1usize << n).map(|i| (i % 17) as f64 - 4.0).collect();
        let mut direct = Statevector::zero(n);
        direct.apply_parametric(&c, params);
        let expected = direct.expectation_diagonal(&diag);
        let compiled = CompiledCircuit::compile(&c);
        let mut ws = SimWorkspace::new(n);
        let got = ws.energy(&compiled, params, &diag);
        prop_assert!((got - expected).abs() < 1e-10, "energy {got} vs {expected}");
    }
}
