//! Property-based tests for the quantum substrate invariants.

use proptest::prelude::*;
use qdb_quantum::prelude::*;

/// Strategy: a random small circuit over `n` qubits.
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..8u8, 0..n as u32, 0..n as u32, -3.2f64..3.2);
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (kind, q0, q1, theta) in gates {
            match kind {
                0 => {
                    c.h(q0);
                }
                1 => {
                    c.x(q0);
                }
                2 => {
                    c.ry(q0, theta);
                }
                3 => {
                    c.rz(q0, theta);
                }
                4 => {
                    c.rx(q0, theta);
                }
                5 if q0 != q1 => {
                    c.cx(q0, q1);
                }
                6 if q0 != q1 => {
                    c.cz(q0, q1);
                }
                7 if q0 != q1 => {
                    c.ecr(q0, q1);
                }
                _ => {
                    c.sx(q0);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any circuit evolution preserves the state norm.
    #[test]
    fn circuits_preserve_norm(c in arb_circuit(5, 24)) {
        let mut sv = Statevector::zero(5);
        sv.apply_circuit(&c);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Probabilities are a valid distribution.
    #[test]
    fn probabilities_sum_to_one(c in arb_circuit(4, 20)) {
        let mut sv = Statevector::zero(4);
        sv.apply_circuit(&c);
        let p = sv.probabilities();
        prop_assert!(p.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Sampling frequencies converge to Born probabilities.
    #[test]
    fn sampling_matches_born_rule(c in arb_circuit(3, 12), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut sv = Statevector::zero(3);
        sv.apply_circuit(&c);
        let p = sv.probabilities();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let counts = sample_counts(&sv, 50_000, &mut rng);
        for (i, &prob) in p.iter().enumerate() {
            let emp = counts.probability(i as u64);
            prop_assert!((emp - prob).abs() < 0.03,
                "state {i}: empirical {emp} vs exact {prob}");
        }
    }

    /// Pauli multiplication is associative (phases included).
    #[test]
    fn pauli_mul_associative(a in 0u64..16, b in 0u64..16, c in 0u64..16) {
        let mk = |bits: u64| PauliString { x_mask: bits & 3, z_mask: bits >> 2 };
        let (pa, pb, pc) = (mk(a), mk(b), mk(c));
        let (ph1, ab) = pa.mul(pb);
        let (ph2, ab_c) = ab.mul(pc);
        let left_phase = ph1 * ph2;
        let (ph3, bc) = pb.mul(pc);
        let (ph4, a_bc) = pa.mul(bc);
        let right_phase = ph3 * ph4;
        prop_assert_eq!(ab_c, a_bc);
        prop_assert!(left_phase.approx_eq(right_phase, 1e-12));
    }

    /// Commutation is symmetric and consistent with multiplication order.
    #[test]
    fn commutation_consistent_with_mul(a in 0u64..256, b in 0u64..256) {
        let mk = |bits: u64| PauliString { x_mask: bits & 15, z_mask: bits >> 4 };
        let (pa, pb) = (mk(a), mk(b));
        prop_assert_eq!(pa.commutes_with(pb), pb.commutes_with(pa));
        let (ph_ab, p_ab) = pa.mul(pb);
        let (ph_ba, p_ba) = pb.mul(pa);
        prop_assert_eq!(p_ab, p_ba);
        if pa.commutes_with(pb) {
            prop_assert!(ph_ab.approx_eq(ph_ba, 1e-12));
        } else {
            prop_assert!(ph_ab.approx_eq(-ph_ba, 1e-12));
        }
    }

    /// Diagonal expansion agrees with per-bitstring evaluation.
    #[test]
    fn diagonal_paths_agree(coeffs in proptest::collection::vec(-2.0f64..2.0, 1..6)) {
        let n = 4;
        let mut op = SparsePauliOp::zero(n);
        for (i, &c) in coeffs.iter().enumerate() {
            let z = ((i * 7 + 3) % 15 + 1) as u64; // nonzero z-mask in range
            op.add_term(PauliString { x_mask: 0, z_mask: z }, c);
        }
        op.simplify();
        let diag = op.to_diagonal();
        for bits in 0..(1u64 << n) {
            prop_assert!((diag[bits as usize] - op.energy_of_bitstring(bits)).abs() < 1e-10);
        }
    }

    /// Expectation of a diagonal op through the Pauli path equals the dense
    /// diagonal path on random product states.
    #[test]
    fn expectation_paths_agree(angles in proptest::collection::vec(-3.0f64..3.0, 4)) {
        let mut c = Circuit::new(4);
        for (q, &a) in angles.iter().enumerate() {
            c.ry(q as u32, a);
        }
        c.cx(0, 1).cx(2, 3);
        let mut sv = Statevector::zero(4);
        sv.apply_circuit(&c);
        let mut op = SparsePauliOp::zero(4);
        op.add_constant(0.5);
        op.add_term(PauliString::z(1), -1.25);
        op.add_term(PauliString::zz(0, 3), 2.0);
        let via_pauli = op.expectation(&sv);
        let via_diag = sv.expectation_diagonal(&op.to_diagonal());
        prop_assert!((via_pauli - via_diag).abs() < 1e-9);
    }

    /// EfficientSU2 binding is linear in the instruction list: binding then
    /// applying equals parametric application.
    #[test]
    fn ansatz_bind_equivalence(params in proptest::collection::vec(-3.0f64..3.0, 16)) {
        let c = efficient_su2(2, 3, Entanglement::Linear);
        prop_assume!(params.len() == c.num_params());
        let mut a = Statevector::zero(2);
        a.apply_parametric(&c, &params);
        let mut b = Statevector::zero(2);
        b.apply_circuit(&c.bind(&params));
        prop_assert!(a.inner(&b).abs() > 1.0 - 1e-9);
    }
}
