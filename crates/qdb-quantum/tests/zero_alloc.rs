//! Proves the compiled VQE hot loop is allocation-free: after one warmup
//! evaluation, `SimWorkspace::energy` over a compiled EfficientSU2 plan
//! performs zero heap allocations per evaluation.
//!
//! Uses a counting global allocator, so this integration test contains
//! exactly one `#[test]` (the counter is process-global) and runs at 10
//! qubits — 1024 amplitudes, below the simulator's rayon threshold, so no
//! thread-pool allocations can leak into the count.

use qdb_quantum::ansatz::{efficient_su2, Entanglement};
use qdb_quantum::compile::CompiledCircuit;
use qdb_quantum::exec::SimWorkspace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn compiled_energy_evaluation_is_allocation_free_after_warmup() {
    let qubits = 10;
    let circuit = efficient_su2(qubits, 2, Entanglement::Linear);
    let params: Vec<f64> = (0..circuit.num_params())
        .map(|i| 0.1 + 0.01 * i as f64)
        .collect();
    let shifted: Vec<f64> = params.iter().map(|p| p + 0.05).collect();
    let diag: Vec<f64> = (0..1u64 << qubits)
        .map(|i| (i % 97) as f64 - 11.0)
        .collect();

    let compiled = CompiledCircuit::compile(&circuit);
    let mut ws = SimWorkspace::new(qubits);
    // Warmup: sizes the statevector and bound tables for this plan, and
    // exercises both bindings so any lazily-allocated path is hit.
    let e_warm = ws.energy(&compiled, &params, &diag);
    ws.energy(&compiled, &shifted, &diag);

    // The counter is process-global, so libtest's own threads can add a
    // few sporadic counts. A loop that truly allocates shows >= 50 in
    // every round; take the minimum over rounds to reject harness noise.
    let mut acc = 0.0;
    let mut min_allocs = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..50 {
            let p = if i % 2 == 0 { &params } else { &shifted };
            acc += ws.energy(&compiled, p, &diag);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_allocs = min_allocs.min(after - before);
    }

    assert_eq!(
        min_allocs, 0,
        "compiled hot loop allocated {min_allocs} times across 50 evaluations"
    );
    // Keep the results observable so the loop cannot be optimized away.
    assert!(acc.is_finite());
    assert!(e_warm.is_finite());
}
