#!/bin/bash
# Compiles every example and qdb-bench/qdb-serve binary into $BINS.
# Usage: bash tools/shadow/bins_all.sh
set -u
. "$(dirname "$0")/common.sh"
BINS=${BINS:-/tmp/shadow/bins}
mkdir -p "$BINS"
fail=0

for ex in "$REPO"/examples/*.rs; do
    n=$(basename "$ex" .rs)
    echo "example $n"
    "$RUSTC" "${FLAGS[@]}" --crate-name "$n" \
        $(extern_flags "$(deps_of qdockbank) qdockbank") \
        -o "$BINS/ex_$n" "$ex" || { echo "FAILED: example $n"; fail=1; }
done

for bin in "$CRATES"/qdb-bench/src/bin/*.rs; do
    n=$(basename "$bin" .rs)
    echo "bench bin $n"
    "$RUSTC" "${FLAGS[@]}" --crate-name "$n" \
        $(extern_flags "$(deps_of qdb-bench) qdb_bench") \
        -o "$BINS/bin_$n" "$bin" || { echo "FAILED: bin $n"; fail=1; }
done

if [ -d "$CRATES/qdb-serve/src/bin" ]; then
    for bin in "$CRATES"/qdb-serve/src/bin/*.rs; do
        n=$(basename "$bin" .rs)
        echo "serve bin $n"
        "$RUSTC" "${FLAGS[@]}" --crate-name "$n" \
            $(extern_flags "$(deps_of qdb-serve) qdb_serve") \
            -o "$BINS/bin_$n" "$bin" || { echo "FAILED: bin $n"; fail=1; }
    done
fi

[ $fail -eq 0 ] && echo "SHADOW BINS: OK"
exit $fail
