#!/bin/bash
# Compiles and runs every unit + integration test binary.
# Usage: bash tools/shadow/test_all.sh [crate]   # e.g. qdb-serve
set -u
. "$(dirname "$0")/common.sh"
TESTS=${TESTS:-/tmp/shadow/tests}
mkdir -p "$TESTS"

only="${1:-}"
fail=0

run() { echo "== $1"; "$2" -q || { echo "FAILED: $1"; fail=1; }; }

for c in $CRATE_ORDER; do
    [ -n "$only" ] && [ "$c" != "$only" ] && continue
    [ -d "$CRATES/$c" ] || continue
    name=$(crate_name "$c")
    if build_test "$c" "$TESTS/${name}_t"; then
        run "$c (unit)" "$TESTS/${name}_t"
    else
        echo "FAILED TO BUILD: $c unit tests"; fail=1
    fi
    # Integration tests: crates/<c>/tests/*.rs, plus the qdockbank suite
    # that lives at the workspace root (tests/*.rs via [[test]] paths).
    for t in "$CRATES/$c"/tests/*.rs; do
        [ -e "$t" ] || continue
        tn=$(basename "$t" .rs)
        if "$RUSTC" "${FLAGS[@]}" --test --crate-name "$tn" \
            $(extern_flags "$(deps_of "$c") $name proptest") \
            -o "$TESTS/$tn" "$t"; then
            run "$c/$tn" "$TESTS/$tn"
        else
            echo "FAILED TO BUILD: $c/$tn"; fail=1
        fi
    done
    if [ "$c" = qdockbank ]; then
        for t in "$REPO"/tests/*.rs; do
            [ -e "$t" ] || continue
            tn=$(basename "$t" .rs)
            if "$RUSTC" "${FLAGS[@]}" --test --crate-name "$tn" \
                $(extern_flags "$(deps_of "$c") $name proptest") \
                -o "$TESTS/$tn" "$t"; then
                run "qdockbank/$tn" "$TESTS/$tn"
            else
                echo "FAILED TO BUILD: qdockbank/$tn"; fail=1
            fi
        done
    fi
done

[ $fail -eq 0 ] && echo "SHADOW TESTS: ALL PASSED" || echo "SHADOW TESTS: FAILURES"
exit $fail
