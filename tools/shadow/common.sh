# Shared definitions for the shadow build harness.
#
# cargo cannot reach a registry in this container, so the workspace is
# compiled with plain `rustc` against stub dependency rlibs prebuilt in
# $LIBS (rand, rayon, serde, ... — see .claude/skills/verify/SKILL.md).
# Source this file, then use build_crate / extern_flags / deps_of.

LIBS=${LIBS:-/tmp/shadow/libs}
REPO=${REPO:-/root/repo}
CRATES="$REPO/crates"
RUSTC=${RUSTC:-rustc}
FLAGS=(--edition 2021 -O -L "$LIBS")

# Direct dependencies of each crate (crate-name form), matching the
# [dependencies] section of its Cargo.toml. Keep in sync when a manifest
# changes.
deps_of() {
    case "$1" in
        qdb-telemetry) echo "serde serde_json parking_lot" ;;
        qdb-store)     echo "qdb_telemetry" ;;
        qdb-quantum)   echo "qdb_telemetry rand rand_chacha rayon" ;;
        qdb-lattice)   echo "qdb_quantum rayon" ;;
        qdb-transpile) echo "qdb_quantum" ;;
        qdb-optimize)  echo "rand rand_chacha" ;;
        qdb-mol)       echo "rand rand_chacha" ;;
        qdb-vqe)       echo "qdb_telemetry qdb_quantum qdb_transpile qdb_lattice qdb_optimize rand rand_chacha crossbeam" ;;
        qdb-dock)      echo "qdb_telemetry qdb_mol rand rand_chacha rayon" ;;
        qdb-qubo)      echo "qdb_telemetry qdb_mol qdb_dock rand rand_chacha rayon" ;;
        qdb-baselines) echo "qdb_mol qdb_lattice rand rand_chacha" ;;
        qdockbank)     echo "qdb_telemetry qdb_store qdb_quantum qdb_transpile qdb_lattice qdb_optimize qdb_vqe qdb_mol qdb_dock qdb_qubo qdb_baselines serde serde_json parking_lot" ;;
        qdb-serve)     echo "qdb_telemetry qdb_store qdb_vqe qdockbank serde serde_json" ;;
        qdb-bench)     echo "qdb_telemetry qdb_store qdb_quantum qdb_transpile qdb_lattice qdb_optimize qdb_vqe qdb_mol qdb_dock qdb_qubo qdb_baselines qdockbank rand rand_chacha rayon serde serde_json" ;;
        *) echo "" ;;
    esac
}

# Build order respecting the dependency DAG above.
CRATE_ORDER="qdb-telemetry qdb-store qdb-quantum qdb-optimize qdb-mol qdb-lattice qdb-transpile qdb-vqe qdb-dock qdb-qubo qdb-baselines qdockbank qdb-serve qdb-bench"

# extern_flags "qdb_telemetry rand" -> --extern qdb_telemetry=$LIBS/... ...
extern_flags() {
    local out="" dep
    for dep in $1; do
        if [ "$dep" = serde_derive ]; then
            out="$out --extern serde_derive=$LIBS/libserde_derive.so"
        else
            out="$out --extern $dep=$LIBS/lib$dep.rlib"
        fi
    done
    echo "$out"
}

crate_name() { echo "${1//-/_}"; }

# build_crate qdb-store — compiles the crate's lib.rs into $LIBS.
build_crate() {
    local dir="$1" name
    name=$(crate_name "$dir")
    "$RUSTC" "${FLAGS[@]}" --crate-type rlib --crate-name "$name" \
        $(extern_flags "$(deps_of "$dir")") \
        --out-dir "$LIBS" "$CRATES/$dir/src/lib.rs" || return 1
}

# build_test qdb-store /path/out — unit-test binary for the crate's lib.rs.
build_test() {
    local dir="$1" out="$2" name
    name=$(crate_name "$dir")
    "$RUSTC" "${FLAGS[@]}" --test --crate-name "${name}_t" \
        $(extern_flags "$(deps_of "$dir") proptest") \
        -o "$out" "$CRATES/$dir/src/lib.rs" || return 1
}
