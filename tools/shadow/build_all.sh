#!/bin/bash
# Rebuilds every workspace crate rlib into $LIBS, in dependency order.
# Usage: bash tools/shadow/build_all.sh [first-crate]
# With an argument, starts the chain at that crate (everything upstream
# is assumed current).
set -u
. "$(dirname "$0")/common.sh"

start="${1:-}"
started=0
for c in $CRATE_ORDER; do
    if [ -n "$start" ] && [ $started -eq 0 ]; then
        [ "$c" = "$start" ] && started=1 || continue
    fi
    [ -d "$CRATES/$c" ] || continue
    echo "building $c"
    build_crate "$c" || { echo "FAILED: $c"; exit 1; }
done
echo "SHADOW BUILD: OK"
