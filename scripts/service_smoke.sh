#!/usr/bin/env bash
# End-to-end smoke gate for the qdb-serve daemon: start the server on a
# two-fragment config, drive it with a scripted HTTP client (submit,
# duplicate-submit, poll, fetch artifacts), SIGTERM it, and require a
# clean drain plus a validating telemetry snapshot and trace.
#
#   cargo build --release -p qdb-serve -p qdb-bench
#   scripts/service_smoke.sh
#
# Binaries can be overridden (the offline dev harness builds them
# elsewhere): SERVE_BIN, VALIDATE_BIN, REPORT_BIN. FRAGMENTS overrides
# the submitted fragment ids; STUB=1 serves the stub pipeline instead of
# the real one (seconds instead of minutes on a slow machine).
set -euo pipefail

SERVE_BIN="${SERVE_BIN:-target/release/serve}"
VALIDATE_BIN="${VALIDATE_BIN:-target/release/validate_telemetry}"
REPORT_BIN="${REPORT_BIN:-target/release/serve_report}"
FRAGMENTS="${FRAGMENTS:-3ckz 3eax}"
POLL_BUDGET_S="${POLL_BUDGET_S:-120}"

WORK="$(mktemp -d /tmp/qdb-serve-smoke.XXXXXX)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$WORK/serve.log" >&2 || true
  exit 1
}

STUB_FLAG=""
[ "${STUB:-0}" = "1" ] && STUB_FLAG="--stub-runner"

"$SERVE_BIN" --addr 127.0.0.1:0 --root "$WORK/root" --workers 2 \
  --queue-cap 8 $STUB_FLAG \
  --telemetry "$WORK/snap.json" --trace "$WORK/trace.json" \
  >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  grep -q "listening on" "$WORK/serve.log" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died before binding"
  sleep 0.1
done
ADDR="$(sed -n 's/^qdb-serve listening on \([0-9.:]*\).*/\1/p' "$WORK/serve.log")"
[ -n "$ADDR" ] && echo "server up at $ADDR" || fail "could not parse bound address"

get() { curl -sf --max-time 10 "http://$ADDR$1"; }
post() { curl -s --max-time 10 -X POST "http://$ADDR/jobs" -d "$1"; }
json_field() { sed -n "s/.*\"$1\": *\"\([^\"]*\)\".*/\1/p"; }

# Liveness and readiness before any load.
[ "$(get /healthz)" = "ok" ] || fail "/healthz not ok"
[ "$(get /readyz)" = "ready" ] || fail "/readyz not ready on an idle server"

# Submit every fragment; remember the content-addressed job keys.
KEYS=""
for frag in $FRAGMENTS; do
  body="$(post "{\"fragment\":\"$frag\"}")"
  key="$(printf '%s' "$body" | json_field job)"
  [ -n "$key" ] || fail "submit of $frag returned no job key: $body"
  echo "submitted $frag → $key"
  KEYS="$KEYS $key"
done

# A duplicate submission must join the existing job, not enqueue again.
first_frag="${FRAGMENTS%% *}"
first_key="${KEYS## }"; first_key="${first_key%% *}"
dup="$(post "{\"fragment\":\"$first_frag\"}")"
printf '%s' "$dup" | grep -q '"deduplicated": true' ||
  fail "duplicate submit did not deduplicate: $dup"
echo "duplicate submit of $first_frag deduplicated"

# A qubo-backend submission is distinct work (its backend is part of the
# job key), so it must enqueue a new job rather than deduplicate.
qubo_body="$(post "{\"fragment\":\"$first_frag\",\"backend\":\"qubo\"}")"
qubo_key="$(printf '%s' "$qubo_body" | json_field job)"
[ -n "$qubo_key" ] || fail "qubo submit returned no job key: $qubo_body"
[ "$qubo_key" != "$first_key" ] || fail "qubo submit deduplicated against the vina job"
echo "submitted $first_frag (backend=qubo) → $qubo_key"
KEYS="$KEYS $qubo_key"

# Poll to completion.
deadline=$(($(date +%s) + POLL_BUDGET_S))
for key in $KEYS; do
  while :; do
    status="$(get "/jobs/$key" | json_field status)"
    case "$status" in
      completed | completed-degraded) break ;;
      failed) fail "job $key failed: $(get "/jobs/$key")" ;;
    esac
    [ "$(date +%s)" -lt "$deadline" ] || fail "job $key stuck at '$status'"
    sleep 0.2
  done
  echo "job $key $status"
done

# Backend provenance round-trips into the job status JSON.
qubo_status="$(get "/jobs/$qubo_key")"
printf '%s' "$qubo_status" | grep -q '"backend": "qubo"' ||
  fail "qubo job status lost its backend label: $qubo_status"
vina_status="$(get "/jobs/$first_key")"
printf '%s' "$vina_status" | grep -q '"backend": "vina"' ||
  fail "vina job status lost its backend label: $vina_status"
echo "backend labels round-tripped (vina + qubo)"

# A post-completion duplicate is served from the result cache.
cached="$(post "{\"fragment\":\"$first_frag\"}")"
printf '%s' "$cached" | grep -Eq '"(deduplicated|cached)": true' ||
  fail "post-completion duplicate was not served from cache: $cached"
echo "post-completion duplicate served from cache"

# Fetch the artifact manifest and one artifact body.
manifest="$(get "/jobs/$first_key/artifacts")"
printf '%s' "$manifest" | grep -q '"files"' || fail "bad artifact manifest: $manifest"
rel="$(printf '%s' "$manifest" | json_field name)"
[ -n "$rel" ] || fail "artifact manifest lists no files: $manifest"
size="$(get "/jobs/$first_key/artifacts/$rel" | wc -c)"
[ "$size" -gt 0 ] || fail "artifact $rel came back empty"
echo "fetched artifact $rel ($size bytes)"

get /metrics | grep -q '^qdb_serve_submitted ' || fail "/metrics missing qdb_serve_submitted"

# Graceful drain: SIGTERM must finish the work and exit 0.
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  SERVER_PID=""
  fail "server exited non-zero after SIGTERM"
fi
SERVER_PID=""
grep -q '^drained:' "$WORK/serve.log" || fail "no drain report in server log"
echo "drain: $(grep '^drained:' "$WORK/serve.log")"

# The snapshot and trace the run left behind must pass the CI gates.
"$VALIDATE_BIN" "$WORK/snap.json" --serve --trace "$WORK/trace.json" ||
  fail "telemetry validation failed"
"$REPORT_BIN" "$WORK/snap.json" || fail "service report failed"

echo "service smoke: OK"
